"""HTTP request handlers of the verification server (stdlib ``http.server``).

The API is JSON in, JSON out:

========================  =====================================================
``POST /jobs``            submit a spec payload; enqueues one job per property
``GET /jobs``             list jobs (``?status=queued|running|done|error``,
                          ``?limit=N``)
``GET /jobs/<id>``        one job's status; includes the result (with any
                          counterexample) once the job is ``done``
``GET /metrics``          cache hit rates, queue depth, latency percentiles
``GET /healthz``          liveness probe
========================  =====================================================

Handlers are deliberately thin: they parse the request, call the matching
view on the owning :class:`~repro.server.app.VerificationServer`, and encode
the response.  Malformed payloads map to 400, unknown resources to 404,
anything unexpected to 500 -- always as ``{"error": ...}`` JSON bodies.
"""

from __future__ import annotations

import json
import re
import sqlite3
from http.server import BaseHTTPRequestHandler
from typing import Any, Dict
from urllib.parse import parse_qs

from repro.has.artifact_system import SpecificationError
from repro.spec.errors import SpecError

_JOB_PATH = re.compile(r"^/jobs/([^/]+)$")

#: Largest accepted request body (spec payloads are text; 16 MiB is generous).
MAX_BODY_BYTES = 16 * 1024 * 1024


class ApiHandler(BaseHTTPRequestHandler):
    """Routes API requests to the owning :class:`VerificationServer`."""

    server_version = "repro-verifas"
    protocol_version = "HTTP/1.1"

    @property
    def app(self):
        return self.server.app  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ routes

    def do_GET(self) -> None:  # noqa: N802 (http.server naming convention)
        self.app.metrics.increment("requests")
        path, _, query = self.path.partition("?")
        try:
            if path == "/healthz":
                return self._send(200, {"status": "ok"})
            if path == "/metrics":
                return self._send(200, self.app.metrics_view())
            if path == "/jobs":
                return self._list_jobs(parse_qs(query))
            match = _JOB_PATH.match(path)
            if match:
                view = self.app.job_view(match.group(1))
                if view is None:
                    return self._send(404, {"error": f"no job with id {match.group(1)!r}"})
                return self._send(200, view)
            self._send(404, {"error": f"unknown path {path!r}"})
        except sqlite3.ProgrammingError:  # pragma: no cover - shutdown race
            # The store was closed under us: a request in flight while the
            # server stops. A clear 503 beats a spurious 500.
            self._send(503, {"error": "server is shutting down"})
        except Exception as error:  # pragma: no cover - defensive catch-all
            self._send(500, {"error": f"{type(error).__name__}: {error}"})

    def do_POST(self) -> None:  # noqa: N802
        self.app.metrics.increment("requests")
        path, _, _ = self.path.partition("?")
        if path != "/jobs":
            # The body was never read; a reused keep-alive connection would
            # misparse it as the next request line.
            self.close_connection = True
            return self._send(404, {"error": f"unknown path {path!r}"})
        try:
            payload = self._read_json_body()
            response = self.app.submit_payload(payload)
        except _BadRequest as error:
            return self._send(400, {"error": str(error)})
        except (SpecError, SpecificationError, ValueError, TypeError, KeyError) as error:
            return self._send(400, {"error": f"invalid job payload: {error}"})
        except sqlite3.ProgrammingError:  # pragma: no cover - shutdown race
            return self._send(503, {"error": "server is shutting down"})
        except Exception as error:  # pragma: no cover - defensive catch-all
            return self._send(500, {"error": f"{type(error).__name__}: {error}"})
        self._send(202, response)

    # ----------------------------------------------------------------- helpers

    def _list_jobs(self, params: Dict[str, list]) -> None:
        status = params.get("status", [None])[0]
        try:
            limit = int(params.get("limit", ["100"])[0])
        except ValueError:
            return self._send(400, {"error": "limit must be an integer"})
        try:
            self._send(200, self.app.jobs_view(status=status, limit=limit))
        except ValueError as error:
            self._send(400, {"error": str(error)})

    def _read_json_body(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            self.close_connection = True  # body length unknown: cannot drain it
            raise _BadRequest("missing or malformed Content-Length header") from None
        if length <= 0:
            # A chunked body would report no Content-Length; either way we
            # are not draining whatever follows.
            self.close_connection = True
            raise _BadRequest("request body is empty")
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # refuse to drain an oversized body
            raise _BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = self.rfile.read(length)
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(f"malformed JSON body: {error}") from None

    def _send(self, code: int, payload: Any) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Set by error paths that leave the request body unread; tell the
            # client explicitly instead of silently dropping the keep-alive.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.app, "quiet", True):  # pragma: no cover - log formatting
            super().log_message(format, *args)


class _BadRequest(Exception):
    """Internal marker for request-level (not payload-level) 400s."""
