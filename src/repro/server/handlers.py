"""HTTP request handlers of the verification server (stdlib ``http.server``).

The API is JSON in, JSON out, versioned under ``/v1``:

================================  =============================================
``POST /v1/jobs``                 submit a spec payload (optionally with
                                  ``ttl_seconds`` / ``deadline_ms``); enqueues
                                  one job per property
``GET /v1/jobs``                  list jobs (``?status=queued|running|done|``
                                  ``error|cancelled``, ``?limit=N``), or batch
                                  status for specific jobs (repeated ``?id=``)
``GET /v1/jobs/<id>``             one job's status; includes the result (with
                                  any counterexample) once ``done``, or the
                                  partial result once ``cancelled``
``GET /v1/jobs/<id>/events``      incremental progress events
                                  (``?cursor=N&limit=M``); with ``?wait_ms=``
                                  the request *long-polls* -- it blocks until
                                  new events arrive, the job turns terminal,
                                  or the wait expires; with
                                  ``Accept: text/event-stream`` it streams
                                  Server-Sent Events (``Last-Event-ID``
                                  resumes a broken stream)
``GET /v1/jobs/<id>/trace``       the job's distributed-trace span tree
                                  (client submit -> HTTP handler -> queue wait
                                  -> worker -> search phases)
``DELETE /v1/jobs/<id>``          cooperative cancellation of a queued or
                                  running job
``GET /v1/metrics``               cache hit rates, queue depth, latency
                                  percentiles; with ``Accept: text/plain``
                                  (or ``?format=prometheus``) the same data
                                  in Prometheus text exposition 0.0.4
``GET /v1/healthz``               liveness probe (always 200 while serving)
``GET /v1/readyz``                readiness probe: 200 when the store accepts
                                  writes, workers are alive and the sweeper
                                  ticks; 503 otherwise
================================  =============================================

``POST /v1/jobs`` honours an incoming W3C ``traceparent`` header: the
accepted jobs join the caller's distributed trace (malformed headers start a
fresh trace, per spec -- never an error).

When the server runs with authentication on (``serve --auth``), every job
route requires ``Authorization: Bearer vk_...`` -- missing/unknown keys are
401, revoked ones 403, and each response is scoped to the calling tenant
(another tenant's job ids answer 404, never 403, to avoid leaking their
existence).  Submits over the tenant's rate limit or in-flight quota answer
429 with a ``Retry-After`` header.  ``/healthz``, ``/readyz`` and
``/metrics`` stay unauthenticated for probes and scrapers.

The original unversioned routes (``/jobs``, ``/metrics``, ``/healthz``, ...)
remain as thin shims over the same views: they answer identically but carry a
``Deprecation: true`` header plus a ``Link: <...>; rel="successor-version"``
pointing at the ``/v1`` replacement.

Handlers are deliberately thin: they parse the request, call the matching
view on the owning :class:`~repro.server.app.VerificationServer`, and encode
the response.  Malformed payloads map to 400, unknown resources to 404,
anything unexpected to 500 -- always as ``{"error": ...}`` JSON bodies.
Well-formed payloads whose *spec* fails static analysis (see
:mod:`repro.analysis`) map to 422 with the error diagnostics in the body;
no job row is written, so a rejected spec never claims a worker.
"""

from __future__ import annotations

import json
import re
import sqlite3
import time
from http.server import BaseHTTPRequestHandler
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote

from repro.analysis import SpecRejectedError
from repro.has.artifact_system import SpecificationError
from repro.obs import parse_traceparent
from repro.server.metrics import PROMETHEUS_CONTENT_TYPE, render_prometheus
from repro.spec.errors import SpecError
from repro.tenancy import AuthFailure, ThrottledError

#: The current (only) API version prefix.
API_PREFIX = "/v1"

_JOB_PATH = re.compile(r"^/jobs/([^/]+)$")
_EVENTS_PATH = re.compile(r"^/jobs/([^/]+)/events$")
_TRACE_PATH = re.compile(r"^/jobs/([^/]+)/trace$")

#: Largest accepted request body (spec payloads are text; 16 MiB is generous).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Cap on ``GET /v1/jobs?limit=``: larger asks are clamped here, negative
#: ones are a 400.  Paginate by status/ids instead of raising the cap.
MAX_LIST_LIMIT = 1000

#: Sentinel distinguishing "request already answered with 401/403" from a
#: successful anonymous (``None``) authentication.
_AUTH_FAILED = object()


class ApiHandler(BaseHTTPRequestHandler):
    """Routes API requests to the owning :class:`VerificationServer`."""

    server_version = "repro-verifas"
    protocol_version = "HTTP/1.1"

    @property
    def app(self):
        return self.server.app  # type: ignore[attr-defined]

    # ------------------------------------------------------------------ routing

    def _route(self, path: str) -> Tuple[str, bool]:
        """Strip the version prefix; returns ``(route, deprecated)``.

        Unversioned paths resolve to the same routes but are flagged so the
        response carries the deprecation headers.
        """
        if path == API_PREFIX or path.startswith(API_PREFIX + "/"):
            return path[len(API_PREFIX):] or "/", False
        return path, True

    def do_GET(self) -> None:  # noqa: N802 (http.server naming convention)
        self.app.metrics.increment("requests")
        path, _, query = self.path.partition("?")
        route, self._deprecated = self._route(path)
        try:
            # Probes and metrics stay unauthenticated even with the front
            # door on: orchestrators and scrapers hold no tenant keys, and
            # the views expose operational aggregates, not job contents.
            if route == "/healthz":
                return self._send(200, self.app.health_view())
            if route == "/readyz":
                ready, view = self.app.readiness_view()
                return self._send(200 if ready else 503, view)
            if route == "/metrics":
                return self._metrics(parse_qs(query))
            tenant = self._authenticate()
            if tenant is _AUTH_FAILED:
                return
            tenant_id = tenant.id if tenant is not None else None
            if route == "/jobs":
                return self._list_jobs(parse_qs(query), tenant_id)
            match = _EVENTS_PATH.match(route)
            if match:
                # Clients percent-escape ids as single path segments; undo it
                # so an escaped id resolves to the job it names.
                return self._job_events(
                    unquote(match.group(1)), parse_qs(query), tenant_id
                )
            match = _TRACE_PATH.match(route)
            if match:
                job_id = unquote(match.group(1))
                view = self.app.trace_view(job_id, tenant_id=tenant_id)
                if view is None:
                    return self._send(404, {"error": f"no job with id {job_id!r}"})
                return self._send(200, view)
            match = _JOB_PATH.match(route)
            if match:
                job_id = unquote(match.group(1))
                view = self.app.job_view(job_id, tenant_id=tenant_id)
                if view is None:
                    return self._send(404, {"error": f"no job with id {job_id!r}"})
                return self._send(200, view)
            self._send(404, {"error": f"unknown path {path!r}"})
        except sqlite3.ProgrammingError:  # pragma: no cover - shutdown race
            # The store was closed under us: a request in flight while the
            # server stops. A clear 503 beats a spurious 500.
            self._send(503, {"error": "server is shutting down"})
        except Exception as error:  # pragma: no cover - defensive catch-all
            self._send(500, {"error": f"{type(error).__name__}: {error}"})

    def do_POST(self) -> None:  # noqa: N802
        self.app.metrics.increment("requests")
        path, _, _ = self.path.partition("?")
        route, self._deprecated = self._route(path)
        if route != "/jobs":
            # The body was never read; a reused keep-alive connection would
            # misparse it as the next request line.
            self.close_connection = True
            return self._send(404, {"error": f"unknown path {path!r}"})
        tenant = self._authenticate(body_unread=True)
        if tenant is _AUTH_FAILED:
            return
        url_prefix = "/jobs" if self._deprecated else f"{API_PREFIX}/jobs"
        # A missing or malformed traceparent header is never an error: it
        # simply starts a fresh trace at this server (the W3C behaviour).
        incoming = parse_traceparent(self.headers.get("traceparent"))
        tracer = self.app.tracer
        span = tracer.start_span("http.submit", parent=incoming, route=url_prefix)
        context = span.context()
        if context is not None:
            # Tracing on: jobs parent under this handler's span.
            trace_id, parent_span = context.trace_id, context.span_id
        elif incoming is not None:
            # Tracing off but the caller sent context: record it on the job
            # rows anyway, so the client's trace can correlate /events.
            trace_id, parent_span = incoming.trace_id, incoming.span_id
        else:
            trace_id = parent_span = None
        try:
            try:
                payload = self._read_json_body()
                response = self.app.submit_payload(
                    payload,
                    url_prefix=url_prefix,
                    trace_id=trace_id,
                    parent_span=parent_span,
                    tenant=tenant,
                )
            except _BadRequest as error:
                span.set_error(str(error))
                return self._send(400, {"error": str(error)})
            except ThrottledError as error:
                span.set_error(f"throttled: {error.reason}")
                body = {
                    "error": str(error),
                    "retry_after": error.retry_after,
                    "reason": error.reason,
                }
                if error.accepted:
                    # Part of the batch made it in before the limit tripped;
                    # the client must not blindly resubmit those jobs.
                    body["jobs"] = error.accepted
                header = self.app.rate_limiter.retry_after_header(error.retry_after)
                return self._send(429, body, extra_headers={"Retry-After": header})
            except SpecRejectedError as error:
                # Must precede the generic ladder below: SpecRejectedError
                # subclasses ValueError.  422 (not 400): the payload is
                # well-formed, the *spec it describes* is statically broken.
                span.set_error(f"spec rejected: {error}")
                return self._send(
                    422,
                    {
                        "error": str(error),
                        "diagnostics": [d.as_dict() for d in error.diagnostics],
                    },
                )
            except (
                SpecError, SpecificationError, ValueError, TypeError, KeyError
            ) as error:
                span.set_error(f"invalid job payload: {error}")
                return self._send(400, {"error": f"invalid job payload: {error}"})
            except sqlite3.ProgrammingError:  # pragma: no cover - shutdown race
                return self._send(503, {"error": "server is shutting down"})
            except Exception as error:  # pragma: no cover - defensive catch-all
                span.set_error(f"{type(error).__name__}: {error}")
                return self._send(500, {"error": f"{type(error).__name__}: {error}"})
            span.set_attr("jobs", len(response["jobs"]))
            self._send(202, response)
        finally:
            tracer.finish(span)

    def do_DELETE(self) -> None:  # noqa: N802
        self.app.metrics.increment("requests")
        try:
            if int(self.headers.get("Content-Length", 0) or 0) > 0:
                # DELETE takes no body; an unread one would be misparsed as
                # the next request line on a reused keep-alive connection.
                self.close_connection = True
        except (TypeError, ValueError):
            self.close_connection = True
        path, _, _ = self.path.partition("?")
        route, self._deprecated = self._route(path)
        match = _JOB_PATH.match(route)
        if not match:
            return self._send(404, {"error": f"unknown path {path!r}"})
        tenant = self._authenticate()
        if tenant is _AUTH_FAILED:
            return
        tenant_id = tenant.id if tenant is not None else None
        job_id = unquote(match.group(1))
        try:
            view = self.app.cancel_job(job_id, tenant_id=tenant_id)
            if view is None:
                return self._send(404, {"error": f"no job with id {job_id!r}"})
            self._send(202, view)
        except sqlite3.ProgrammingError:  # pragma: no cover - shutdown race
            self._send(503, {"error": "server is shutting down"})
        except Exception as error:  # pragma: no cover - defensive catch-all
            self._send(500, {"error": f"{type(error).__name__}: {error}"})

    # ----------------------------------------------------------------- helpers

    def _authenticate(self, body_unread: bool = False):
        """Resolve the ``Authorization`` header to a tenant (or ``None``).

        With auth off this is always ``None`` (anonymous).  On failure the
        401/403 response is sent here and the :data:`_AUTH_FAILED` sentinel
        returned; callers must bail out without further writes.  *body_unread*
        marks requests whose body has not been consumed yet (POST): their
        connection must close, or keep-alive would misparse the body.
        """
        try:
            return self.app.authenticate(self.headers.get("Authorization"))
        except AuthFailure as error:
            if body_unread:
                self.close_connection = True
            extra = (
                {"WWW-Authenticate": "Bearer"} if error.status == 401 else None
            )
            self._send(error.status, {"error": str(error)}, extra_headers=extra)
            return _AUTH_FAILED

    def _metrics(self, params: Dict[str, list]) -> None:
        """``GET /metrics`` with content negotiation.

        JSON stays the default (existing dashboards and tests parse it);
        Prometheus text exposition is served when the scraper asks for it --
        by ``Accept`` (prometheus sends ``text/plain; version=0.0.4``) or
        explicitly via ``?format=prometheus`` (handy with curl).
        ``?format=json`` forces JSON even under a text/plain Accept.
        """
        requested = params.get("format", [""])[0]
        accept = self.headers.get("Accept", "") or ""
        view = self.app.metrics_view()
        if requested == "prometheus" or (
            requested != "json" and "text/plain" in accept
        ):
            return self._send_text(200, render_prometheus(view), PROMETHEUS_CONTENT_TYPE)
        self._send(200, view)

    def _list_jobs(
        self, params: Dict[str, list], tenant_id: Optional[str] = None
    ) -> None:
        status = params.get("status", [None])[0]
        limit = self._int_param(params, "limit", 100)
        if limit is None:
            return
        if limit < 0:
            return self._send(400, {"error": "limit must be non-negative"})
        limit = min(limit, MAX_LIST_LIMIT)
        ids = params.get("id")  # repeated ?id=... -> batch status view
        try:
            self._send(
                200,
                self.app.jobs_view(
                    status=status, limit=limit, ids=ids, tenant_id=tenant_id
                ),
            )
        except ValueError as error:
            self._send(400, {"error": str(error)})

    def _job_events(
        self,
        job_id: str,
        params: Dict[str, list],
        tenant_id: Optional[str] = None,
    ) -> None:
        cursor = self._int_param(params, "cursor", 0)
        if cursor is None:
            return
        limit = self._int_param(params, "limit", 500)
        if limit is None:
            return
        wait_ms = self._int_param(params, "wait_ms", 0)
        if wait_ms is None:
            return
        accept = self.headers.get("Accept", "") or ""
        if "text/event-stream" in accept:
            return self._stream_events(job_id, cursor, limit, wait_ms, tenant_id)
        if wait_ms > 0:
            self.app.metrics.increment("long_poll_requests")
            view = self.app.events_view_wait(
                job_id, cursor=cursor, limit=limit, wait_ms=wait_ms,
                tenant_id=tenant_id,
            )
        else:
            view = self.app.events_view(
                job_id, cursor=cursor, limit=limit, tenant_id=tenant_id
            )
        if view is None:
            return self._send(404, {"error": f"no job with id {job_id!r}"})
        self._send(200, view)

    def _stream_events(
        self,
        job_id: str,
        cursor: int,
        limit: int,
        wait_ms: int,
        tenant_id: Optional[str] = None,
    ) -> None:
        """Server-Sent Events over the job's event log.

        One response streams every event from *cursor* on as
        ``id:``/``event:``/``data:`` frames, pushing new ones as they land
        (in-process broker wakeups, store-cursor fallback for peers'
        writes), and ends with an ``event: terminal`` frame once the job is
        terminal and drained.  The stream also ends -- without a terminal
        frame -- when the per-request budget (``wait_ms``, default/cap
        :attr:`~repro.server.app.VerificationServer.long_poll_max_ms`)
        expires with the job still running; clients reconnect with
        ``Last-Event-ID`` (or ``?cursor=``) and lose nothing, because the
        durable log replays.  Unknown jobs still 404 as JSON -- the check
        runs before any stream bytes are committed.
        """
        app = self.app
        app.metrics.increment("sse_requests")
        if cursor == 0:
            # EventSource reconnects resend the position as a header.
            last_event_id = self.headers.get("Last-Event-ID")
            if last_event_id:
                try:
                    cursor = int(last_event_id)
                except ValueError:
                    pass
        if app._visible_job(job_id, tenant_id) is None:
            return self._send(404, {"error": f"no job with id {job_id!r}"})
        budget_ms = wait_ms if wait_ms > 0 else app.long_poll_max_ms
        deadline = time.monotonic() + min(budget_ms, app.long_poll_max_ms) / 1000.0
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # No Content-Length: the stream is EOF-delimited, so this connection
        # cannot be reused.
        self.close_connection = True
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            with app.broker.subscription(job_id) as subscription:
                while True:
                    view = app.events_view(
                        job_id, cursor=cursor, limit=limit, tenant_id=tenant_id
                    )
                    if view is None:
                        return  # job swept mid-stream: end of stream
                    for event in view["events"]:
                        cursor = max(cursor, int(event["seq"]))
                        self._write_sse_frame(str(event["seq"]), event["kind"], event)
                    if view["terminal"] and len(view["events"]) < limit:
                        self._write_sse_frame(
                            None,
                            "terminal",
                            {
                                "id": job_id,
                                "status": view["status"],
                                "cursor": cursor,
                                "terminal": True,
                            },
                        )
                        return
                    if view["events"]:
                        continue  # full page: drain before sleeping
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return
                    subscription.wait(min(remaining, app.push_fallback_interval))
        except (BrokenPipeError, ConnectionError, OSError):
            return  # client went away mid-stream
        except sqlite3.ProgrammingError:
            return  # store closed mid-shutdown; headers are already out

    def _write_sse_frame(
        self, event_id: Optional[str], kind: str, payload: Any
    ) -> None:
        frame = ""
        if event_id is not None:
            frame += f"id: {event_id}\n"
        frame += f"event: {kind}\ndata: {json.dumps(payload)}\n\n"
        self.wfile.write(frame.encode("utf-8"))
        self.wfile.flush()

    def _int_param(self, params: Dict[str, list], name: str, default: int) -> Optional[int]:
        """Parse an integer query parameter, sending a 400 on failure."""
        try:
            return int(params.get(name, [str(default)])[0])
        except ValueError:
            self._send(400, {"error": f"{name} must be an integer"})
            return None

    def _read_json_body(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            self.close_connection = True  # body length unknown: cannot drain it
            raise _BadRequest("missing or malformed Content-Length header") from None
        if length <= 0:
            # A chunked body would report no Content-Length; either way we
            # are not draining whatever follows.
            self.close_connection = True
            raise _BadRequest("request body is empty")
        if length > MAX_BODY_BYTES:
            self.close_connection = True  # refuse to drain an oversized body
            raise _BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        body = self.rfile.read(length)
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(f"malformed JSON body: {error}") from None

    def _send(
        self,
        code: int,
        payload: Any,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._send_bytes(
            code,
            json.dumps(payload, indent=2).encode("utf-8") + b"\n",
            "application/json",
            extra_headers=extra_headers,
        )

    def _send_text(self, code: int, text: str, content_type: str) -> None:
        self._send_bytes(code, text.encode("utf-8"), content_type)

    def _send_bytes(
        self,
        code: int,
        body: bytes,
        content_type: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if getattr(self, "_deprecated", False):
            # Legacy unversioned route: same behaviour, plus a deprecation
            # signal and a pointer at the /v1 successor.
            path, _, _ = self.path.partition("?")
            self.send_header("Deprecation", "true")
            self.send_header("Link", f'<{API_PREFIX}{path}>; rel="successor-version"')
        if self.close_connection:
            # Set by error paths that leave the request body unread; tell the
            # client explicitly instead of silently dropping the keep-alive.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.app, "quiet", True):  # pragma: no cover - log formatting
            super().log_message(format, *args)


class _BadRequest(Exception):
    """Internal marker for request-level (not payload-level) 400s."""
