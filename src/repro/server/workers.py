"""Multi-process verification workers for the HTTP server.

The thread-model workers in :mod:`repro.server.app` share one GIL, so
``--workers N`` buys concurrency only for I/O: the CPU-bound Karp–Miller
search still runs one state expansion at a time.  This module provides the
**process** worker model: long-lived OS processes, one per worker slot, that
run searches truly in parallel (Spin's multi-core swarm shape).

Architecture
============

Each worker slot is a :class:`ProcessWorkerAgent` -- a *parent-side* thread
owning one child process:

* the agent claims jobs from the SQLite :class:`~repro.server.store.JobStore`
  (``claim_next(worker_id=...)``, which stamps ``claimed_by`` and an initial
  heartbeat), checks the read-through result cache, and dispatches uncached
  jobs to its child over a duplex ``multiprocessing`` pipe as plain spec
  dicts (the same picklable shape :func:`repro.service.engine._verify_job_dicts`
  uses);
* the child (:func:`process_worker_main`) rebuilds the model, runs the
  cancellable search, and streams ``ProgressEvent`` tuples followed by one
  terminal ``("done", result_dict)`` / ``("error", message)`` message back
  up the pipe; the agent drains them into the store's events table, so
  ``GET /v1/jobs/<id>/events`` observes a process-worker search exactly as
  it would a thread-worker one;
* while draining, the agent *syncs* its claim with the store once per
  heartbeat interval (:meth:`~repro.server.store.JobStore.touch_claim`): the
  heartbeat is refreshed only while the agent still owns the claim -- so
  :meth:`~repro.server.store.JobStore.requeue_stale` (run by whichever
  server holds the sweeper lease) can rescue jobs whose *agent* died, and a
  zombie agent whose job was already rescued cannot keep it alive -- and the
  persisted ``cancel_requested`` flag is read back, so a ``DELETE`` accepted
  by **any server sharing the store** stops this child within one heartbeat
  interval.

Cancellation crosses the process boundary through a shared
``multiprocessing.Event``: the child's
:class:`~repro.core.control.CancellationToken` polls ``event.is_set`` (the
token's *external* backend) once per search-loop iteration, so
``DELETE /v1/jobs/<id>`` -- handled locally, or observed from the store's
``cancel_requested`` flag when a peer server accepted it -- stops a hot
search within its poll interval and the partial statistics travel back like
any other result.

Workers are spawn-safe (the ``spawn`` start method is used everywhere --- no
fork-inherited locks) and **recycled** after ``max_jobs_per_worker`` jobs,
bounding any leak a long worker life could accumulate.  A crashed child
(segfault, OOM-kill, ``SIGKILL``) is detected by the agent, its job is
released back to the queue through the same recovery semantics a server
restart uses (requeue -- unless the job's cancellation was already
requested, in which case it is finalised ``cancelled``), and a fresh child
is spawned in its place.
"""

from __future__ import annotations

import multiprocessing
import sqlite3
import threading
import time
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro.core.control import CancellationToken, PhaseTimer, SearchControl
from repro.core.verifier import VerificationResult, Verifier
from repro.events import (
    CacheServed,
    JobFailed,
    SearchEvent,
    SpanRecorded,
    VerificationStarted,
    WorkerCrashed,
    WorkerRecycled,
)
from repro.obs import TraceContext, TraceScope, Tracer
from repro.service.jobs import VerificationJob

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (app imports us)
    from repro.server.app import VerificationServer
    from repro.server.store import StoredJob

#: The multiprocessing start method.  ``spawn`` is the only start method that
#: is safe under threads on every platform (``fork`` duplicates a
#: mid-transaction SQLite lock or a held logging lock into the child).
START_METHOD = "spawn"


def deadline_ms_binding(stored: "StoredJob") -> bool:
    """Whether a timeout should be blamed on the job-level ``deadline_ms``.

    ``deadline_ms`` is a job-level limit *outside* the content fingerprint,
    so a verdict it truncates must never enter the fingerprint-keyed result
    cache; ``options.timeout_seconds`` is fingerprinted and hence safe to
    cache.  ``deadline_ms`` is the binding limit when it is the sooner of
    the two.
    """
    options_timeout = stored.options_dict.get("timeout_seconds")
    return stored.deadline_ms is not None and (
        options_timeout is None or stored.deadline_ms / 1000.0 <= options_timeout
    )


# --------------------------------------------------------------------- child


def process_worker_main(conn, cancel_event) -> None:
    """Child-process entry point: verify tasks from the pipe until told to stop.

    Must stay a module-level function (picklable by reference under
    ``spawn``) and exchange only JSON-compatible payloads.  One message in
    (``None`` to exit, else a task dict), a stream of messages out::

        ("event", kind, data)     # progress events, relayed to the store
        ("span", span_dict)       # finished trace spans (traced tasks only)
        ("done", result_dict)     # the serialized VerificationResult
        ("error", message)        # the search raised

    ``cancel_event`` is the cross-process cancellation backend: the token
    polls it cooperatively once per search-loop iteration, so a cancel set
    by the parent stops the search within one iteration.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):  # parent died or closed the pipe
            return
        if task is None:
            return
        try:
            conn.send(("done", _run_task(task, conn, cancel_event)))
        except Exception as error:  # noqa: BLE001 - report, don't die
            try:
                conn.send(("error", f"{type(error).__name__}: {error}"))
            except (BrokenPipeError, OSError):  # pragma: no cover
                return


def _run_task(task: Dict[str, Any], conn, cancel_event) -> Dict[str, Any]:
    """Run one verification task dict; returns the serialized result."""
    job = VerificationJob(
        system_dict=task["system"],
        property_dict=task["property"],
        options_dict=task["options"],
    )
    token = CancellationToken(external=cancel_event.is_set)
    deadline_ms = task.get("deadline_ms")
    if deadline_ms is not None:
        token.tighten_deadline(deadline_ms / 1000.0)

    def relay(event) -> None:
        # SearchControl.emit swallows sink exceptions, so a dead pipe can
        # never kill the search; the parent notices the crash separately.
        conn.send(("event", event.kind, dict(event.data)))

    # Traced tasks carry their context across the process boundary in the
    # task dict; the child runs its own short-lived tracer whose exporter
    # relays finished spans up the pipe (Tracer.finish swallows exporter
    # errors, so a dying pipe cannot kill the search either).
    traced: Dict[str, Any] = {}
    trace = task.get("trace")
    if trace:
        tracer = Tracer(
            enabled=True, exporter=lambda span: conn.send(("span", span.as_dict()))
        )
        parent = (
            TraceContext(trace["trace_id"], trace["parent_span"])
            if trace.get("parent_span")
            else None
        )
        traced = {
            "phase_timer": PhaseTimer(),
            "trace": TraceScope(tracer, parent=parent, job_id=trace.get("job_id")),
        }

    control = SearchControl(
        token=token,
        event_sink=relay,
        progress_interval=task.get("progress_interval", 500),
        **traced,
    )
    result = Verifier(job.system(), job.options()).verify(job.ltl_property(), control)
    return result.as_dict()


def probe_process_support() -> Optional[str]:
    """Spawn-and-join one trivial child; the error string if that fails.

    Mirrors :mod:`repro.service.engine`'s ``BrokenProcessPool`` degradation:
    sandboxes without a working ``spawn`` (no ``/dev/shm`` semaphores, no
    ``fork``/``exec``) make the server fall back to thread workers instead
    of failing to start.
    """
    try:
        context = multiprocessing.get_context(START_METHOD)
        probe = context.Process(target=_probe_main, daemon=True)
        probe.start()
        probe.join(timeout=60)
        if probe.exitcode != 0:
            if probe.is_alive():  # pragma: no cover - wedged spawn
                probe.terminate()
                probe.join(timeout=5)
            return f"probe child exited with {probe.exitcode}"
        return None
    except Exception as error:  # noqa: BLE001 - any failure means "no processes"
        return f"{type(error).__name__}: {error}"


def _probe_main() -> None:  # pragma: no cover - runs in a child process
    """A no-op child proving process creation works in this environment."""


# -------------------------------------------------------------------- parent


class ProcessWorkerAgent(threading.Thread):
    """Parent-side owner of one worker process (one worker slot).

    The agent is a daemon thread running the same claim loop as a thread
    worker, but executing each claimed job on its child process.  It is the
    only toucher of its child's pipe, so no cross-thread pipe locking is
    needed.
    """

    def __init__(self, server: "VerificationServer", index: int):
        # The server-id prefix makes the claim attributable in shared-store
        # deployments: startup recovery requeues only own-prefix claims, and
        # operators can read `claimed_by` to see which server runs a job.
        self.worker_id = f"{server.worker_id_prefix}proc-{index}"
        super().__init__(name=f"repro-agent-{index}", daemon=True)
        self.server = server
        self.context = multiprocessing.get_context(START_METHOD)
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self._conn = None  # parent end of the duplex pipe
        self._cancel_event = None
        self._jobs_on_child = 0  # jobs dispatched to the current child
        self._spawn_failures = 0
        server.metrics.worker_gauges.update(
            self.worker_id, state="idle", model="process"
        )

    # ------------------------------------------------------------- lifecycle

    def _ensure_child(self) -> None:
        """(Re)spawn the child if missing, dead, or due for recycling."""
        if self.process is not None and self.process.is_alive():
            if self._jobs_on_child < self.server.max_jobs_per_worker:
                return
            self._shutdown_child()  # recycle: bounded worker lifetime
            self.server.events.fire(WorkerRecycled(data={"worker": self.worker_id}))
            self.server.metrics.worker_gauges.increment(self.worker_id, "recycles")
        if self.process is not None and not self.process.is_alive():
            self._close_pipes()
        parent_conn, child_conn = self.context.Pipe(duplex=True)
        cancel_event = self.context.Event()
        process = self.context.Process(
            target=process_worker_main,
            args=(child_conn, cancel_event),
            name=f"repro-worker-{self.worker_id}",
            daemon=True,
        )
        try:
            process.start()
        except BaseException:
            # A failed spawn must not leak the fresh pipe fds: the agent's
            # claim loop retries indefinitely on EAGAIN-style failures.
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()  # the child holds its own copy
        self.process = process
        self._conn = parent_conn
        self._cancel_event = cancel_event
        self._jobs_on_child = 0
        self.server.metrics.worker_gauges.update(self.worker_id, pid=process.pid)

    def _close_pipes(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover
                pass
        self._conn = None
        self.process = None

    def _shutdown_child(self, graceful: bool = True) -> None:
        """Stop the current child: sentinel first, terminate if it lingers."""
        if self.process is None:
            return
        if graceful and self.process.is_alive() and self._conn is not None:
            try:
                self._conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        if self.process.is_alive():
            self.process.join(timeout=2)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5)
        self._close_pipes()

    def close(self) -> None:
        """Tear the child down (called by the server after the agent joined)."""
        self._shutdown_child()
        self.server.metrics.worker_gauges.update(
            self.worker_id, state="stopped", pid=None, current_job=None
        )

    # ------------------------------------------------------------ claim loop

    def run(self) -> None:
        while not self.server._stop_event.is_set():
            try:
                stored = self.server.store.claim_next(worker_id=self.worker_id)
            except sqlite3.ProgrammingError:  # store closed mid-shutdown
                return
            except Exception:
                # Transient store trouble (e.g. busy timeout exhausted):
                # keep the slot alive, retry shortly.
                time.sleep(0.5)
                continue
            if stored is None:
                self.server._wakeup.wait(timeout=0.1)
                self.server._wakeup.clear()
                continue
            try:
                self._run_job(stored)
                self._spawn_failures = 0
            except Exception:  # noqa: BLE001 - agent must survive anything
                # Most likely a failed (re)spawn: hand the job back and back
                # off (monotonic sleep; wall-clock steps cannot starve us).
                self._spawn_failures += 1
                try:
                    self.server.store.release(stored.id, self.worker_id)
                except Exception:  # pragma: no cover - store closed
                    return
                time.sleep(min(5.0, 0.25 * (2 ** min(self._spawn_failures, 5))))

    # ------------------------------------------------------------- execution

    def _run_job(self, stored: "StoredJob") -> None:
        server = self.server
        started = time.monotonic()
        gauges = server.metrics.worker_gauges
        gauges.update(self.worker_id, state="busy", current_job=stored.id)
        # The agent owns the job's worker.execute span: the child may be
        # SIGKILL'd mid-search, and a dead process cannot close its own
        # spans -- the agent closes this one with an error status instead.
        execute_span = server._start_job_spans(stored, self.worker_id)
        try:
            job = stored.to_job()
            cached = server.cache.get(job.fingerprint)
            if cached is not None:
                server.events.fire(
                    CacheServed(
                        stored.id,
                        {"outcome": cached.outcome.value, "cache_hit": True},
                    )
                )
                if execute_span is not None:
                    execute_span.set_attr("cache_hit", True)
                server._finalize_result(
                    stored, cached, True, False, started, owner=self.worker_id
                )
                gauges.increment(self.worker_id, "jobs_completed")
                return

            self._ensure_child()
            self._cancel_event.clear()  # a late cancel of the previous job
            server._register_canceller(stored.id, self._cancel_event.set)
            try:
                # A cancel accepted between the claim and the registration
                # above only reached the store; fold it into the event now.
                if server.store.is_cancel_requested(stored.id):
                    self._cancel_event.set()
                server.events.fire(VerificationStarted(job_id=stored.id))
                self._jobs_on_child += 1
                task = {
                    "system": job.system_dict,
                    "property": job.property_dict,
                    "options": job.options_dict,
                    "deadline_ms": stored.deadline_ms,
                    "progress_interval": server.progress_interval,
                }
                if execute_span is not None:
                    # The child's verify.* spans parent under this agent's
                    # execute span, crossing the pipe as plain dict context.
                    task["trace"] = {
                        "trace_id": execute_span.trace_id,
                        "parent_span": execute_span.span_id,
                        "job_id": stored.id,
                    }
                self._conn.send(task)
                outcome = self._drain(stored, started, execute_span)
            finally:
                server._unregister_canceller(stored.id)
            if outcome == "crashed":
                if execute_span is not None:
                    execute_span.set_error(
                        "worker process died mid-job", reason="worker-crashed"
                    )
                self._handle_crash(stored)
            elif outcome == "done":
                gauges.increment(self.worker_id, "jobs_completed")
        finally:
            if execute_span is not None:
                server.tracer.finish(execute_span)
            gauges.update(self.worker_id, state="idle", current_job=None)

    def _drain(
        self, stored: "StoredJob", started: float, execute_span=None
    ) -> str:
        """Pump child messages into the store until the job reaches an end.

        Returns ``"done"``, ``"error"`` or ``"crashed"``.  Once per
        ``heartbeat_interval`` the agent *syncs* the claim with the store
        (one transaction): the heartbeat is refreshed only while this worker
        still owns the claim, and the persisted ``cancel_requested`` flag is
        read back -- so a ``DELETE`` handled by **another server** sharing
        the store stops this child within one heartbeat interval, and a
        claim rescued by a peer's stale sweeper makes this agent abandon the
        (now zombie) run instead of keeping it alive.
        """
        server = self.server
        last_sync = time.monotonic()
        while True:
            try:
                if self._conn.poll(timeout=0.1):
                    message = self._conn.recv()
                else:
                    message = None
            except (EOFError, OSError):
                return "crashed"
            if message is not None:
                kind = message[0]
                if kind == "event":
                    # Onto the bus as a lossy SearchEvent: the StoreSink
                    # appends it under the short fail-fast busy timeout and
                    # drops it on contention -- dropping a progress event
                    # beats blocking this thread past the staleness window
                    # (it also runs the job's heartbeats).
                    server.events.fire(
                        SearchEvent(
                            job_id=stored.id,
                            data=message[2],
                            kind=message[1],
                            trace_id=stored.trace_id,
                        )
                    )
                elif kind == "span":
                    # A finished span relayed by the child's tracer: onto
                    # the bus, where the TraceSink persists it.
                    server.events.fire(
                        SpanRecorded(
                            job_id=stored.id,
                            data=message[1],
                            trace_id=message[1].get("trace_id"),
                        )
                    )
                elif kind == "done":
                    result = VerificationResult.from_dict(message[1])
                    truncated = deadline_ms_binding(stored) and result.stats.timed_out
                    if execute_span is not None:
                        execute_span.set_attr("cache_hit", False)
                        if result.stats.cancelled:
                            execute_span.set_error(
                                "search cancelled", reason="cancelled"
                            )
                    server._finalize_result(
                        stored, result, False, truncated, started,
                        owner=self.worker_id,
                    )
                    return "done"
                elif kind == "error":
                    if execute_span is not None:
                        execute_span.set_error(message[1])
                    if server.store.mark_error(
                        stored.id, message[1], worker_id=self.worker_id
                    ):
                        server.events.fire(
                            JobFailed(job_id=stored.id, data={"error": message[1]})
                        )
                    return "error"
            elif not self.process.is_alive():
                # One final poll: the child may have flushed its terminal
                # message between our poll() and is_alive() checks.
                if self._conn.poll(timeout=0):
                    continue
                return "crashed"
            now = time.monotonic()
            if now - last_sync >= server.heartbeat_interval:
                try:
                    owned, cancel_requested = server.store.touch_claim(
                        stored.id, self.worker_id
                    )
                except sqlite3.OperationalError:
                    # Heavily contended write (the heartbeat path fails fast
                    # rather than blocking past the staleness window): skip
                    # this tick, the claim is retried on the next one.
                    owned, cancel_requested = True, False
                if (cancel_requested or not owned) and not self._cancel_event.is_set():
                    # Either a cancel arrived through the store (possibly
                    # from another server), or we lost the claim to a stale
                    # rescue -- in both cases the child should stop: its
                    # verdict would bounce off the ownership predicate anyway.
                    self._cancel_event.set()
                last_sync = now

    def _handle_crash(self, stored: "StoredJob") -> None:
        """The child died mid-job: requeue through the recovery semantics."""
        server = self.server
        exitcode = self.process.exitcode if self.process is not None else None
        self._close_pipes()
        server.metrics.worker_gauges.increment(self.worker_id, "crashes")
        # Same rule as restart recovery: an accepted cancel is honoured
        # (finalise `cancelled`), otherwise the job re-queues -- verification
        # is deterministic and idempotent, so a re-run is always safe.  The
        # ownership predicate makes this a no-op if a peer server's sweeper
        # already rescued (and possibly re-claimed) the job.
        released = server.store.release(stored.id, self.worker_id)
        # WorkerCrashed is durable-when-job-scoped: the job id is attached
        # only when the release landed (the rescued job's event log belongs
        # to its new owner); the crash counter bumps either way.
        server.events.fire(
            WorkerCrashed(
                job_id=stored.id if released else None,
                data={
                    "worker": self.worker_id,
                    "exitcode": exitcode,
                    "disposition": (
                        "cancelled"
                        if server.store.is_cancel_requested(stored.id)
                        else "requeued"
                    ),
                },
            )
        )
        server._wakeup.set()  # a requeued job is claimable again -- by anyone


# ----------------------------------------------------------------- observers


def pool_snapshot(agents) -> Tuple[int, int]:
    """(alive, total) child-process counts for a list of agents."""
    alive = sum(
        1 for agent in agents if agent.process is not None and agent.process.is_alive()
    )
    return alive, len(agents)
