"""Restart recovery for the verification server.

A server process can die with jobs in every lifecycle state.  On startup the
server runs :func:`recover` against its :class:`~repro.server.store.JobStore`:

* jobs stuck ``running`` whose cancellation was already requested before the
  crash are finalised as ``cancelled`` -- the user's cancel was accepted, so
  requeueing them would resurrect work that was explicitly stopped;
* the remaining ``running`` jobs (their worker died mid-verification) go back
  to ``queued`` and are re-verified -- verification is deterministic and
  idempotent, so re-running an interrupted job is always safe;
* ``queued`` jobs simply wait for the restarted workers;
* ``done`` jobs keep their persisted results, which the read-through cache
  serves without invoking the verifier again;
* ``cancelled`` jobs are terminal and stay untouched.

Shared-store deployments
========================

When several servers share one store file, a restarting server must not
"recover" jobs that are running live on its peers.  Passing ``server_id``
scopes the repair: only claims made by this server's own workers (their
``claimed_by`` starts with ``"<server_id>:"``) and unattributable claims
(``claimed_by IS NULL`` -- jobs claimed outside any server) are touched.
Scopes of distinct server ids are disjoint, so concurrent startups cannot
requeue each other's work -- no lock needed; repair of *peers that crash
later* is handled at runtime by the sweeper-lease holder's stale-heartbeat
rescue (see :meth:`~repro.server.store.JobStore.requeue_stale` and the
server's sweeper loop).  ``server_id=None`` keeps the legacy single-server
behaviour: the whole store is repaired.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.events import EventManager, RecoveryCompleted
from repro.server.store import JobStore


@dataclass(frozen=True)
class RecoveryReport:
    """What a restarted server found in (and did to) its store."""

    requeued: int          # interrupted `running` jobs returned to the queue
    queued: int            # jobs awaiting a worker after recovery
    completed: int         # jobs whose results survived the restart
    errored: int           # jobs that had failed before the restart
    cancelled: int         # terminal cancelled jobs (incl. those finalised now)
    cancelled_interrupted: int  # running jobs finalised as cancelled (not requeued)
    results_retained: int  # persisted result rows available to the cache

    def as_dict(self) -> Dict[str, int]:
        return {
            "requeued": self.requeued,
            "queued": self.queued,
            "completed": self.completed,
            "errored": self.errored,
            "cancelled": self.cancelled,
            "cancelled_interrupted": self.cancelled_interrupted,
            "results_retained": self.results_retained,
        }

    def summary(self) -> str:
        return (
            f"recovered store: {self.requeued} interrupted job(s) re-queued, "
            f"{self.cancelled_interrupted} finalised as cancelled, "
            f"{self.queued} queued, {self.completed} completed, "
            f"{self.errored} errored, {self.cancelled} cancelled, "
            f"{self.results_retained} result(s) retained"
        )


def recover(
    store: JobStore,
    server_id: Optional[str] = None,
    heartbeat_grace_seconds: Optional[float] = None,
    events: Optional[EventManager] = None,
) -> RecoveryReport:
    """Repair *store* after an unclean shutdown and report what was found.

    With ``server_id``, the repair is scoped to this server's own previous
    claims (plus unattributable ones) -- see the module docstring; jobs
    running live on peer servers sharing the store are left alone.

    ``heartbeat_grace_seconds`` (the server passes its staleness threshold)
    spares claims whose heartbeat is still fresh: during a rolling restart
    the old same-id instance may still be draining -- and heartbeating --
    its last jobs, and yanking them would discard nearly-finished work.
    Such claims are picked up by the sweeper's stale rescue if their owner
    really is gone.  Claims without heartbeats are always repaired.
    """
    owner_prefix = None if server_id is None else f"{server_id}:"
    cancelled_interrupted = store.cancel_interrupted(
        owner_prefix=owner_prefix, heartbeat_grace_seconds=heartbeat_grace_seconds
    )
    requeued = store.requeue_running(
        owner_prefix=owner_prefix, heartbeat_grace_seconds=heartbeat_grace_seconds
    )
    counts = store.counts()
    report = RecoveryReport(
        requeued=requeued,
        queued=counts["queued"],
        completed=counts["done"],
        errored=counts["error"],
        cancelled=counts["cancelled"],
        cancelled_interrupted=cancelled_interrupted,
        results_retained=store.result_count(),
    )
    if events is not None:
        # Onto the bus (a log line when a LogSink listens, an
        # events_emitted tick): recovery is an event like any other.
        events.fire(RecoveryCompleted(data=report.as_dict()))
    return report
