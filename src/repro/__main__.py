"""Entry point of ``python -m repro``."""

import sys

from repro.cli import main

# The __main__ guard matters here: spawn-based worker processes re-execute
# the parent's main module when the server is launched by file path
# (`python src/repro/__main__.py serve`); without the guard every child
# would start its own server.  (`python -m repro` is exempt -- spawn skips
# `*.__main__` modules -- but the path form must be safe too.)
if __name__ == "__main__":
    sys.exit(main())
