"""Tests for artifact-system assembly, validation and the fluent builder."""

import pytest

from repro.has.artifact_system import ArtifactSystem, SpecificationError
from repro.has.builder import ArtifactSystemBuilder
from repro.has.conditions import Const, Eq, FalseCond, Neq, NULL, TrueCond, Var
from repro.has.schema import DatabaseSchema
from repro.has.services import ClosingService, Insert, InternalService, OpeningService, Retrieve
from repro.has.tasks import ArtifactRelation, TaskSchema, Variable
from repro.has.types import IdType, VALUE


@pytest.fixture
def schema():
    return DatabaseSchema.from_dict({"ITEMS": {"price": None}})


def simple_task(name="Main", variables=None):
    return TaskSchema(name, variables or [Variable("x"), Variable("item", IdType("ITEMS"))])


class TestValidation:
    def test_single_root_required(self, schema):
        with pytest.raises(SpecificationError, match="exactly one root"):
            ArtifactSystem(
                schema,
                [simple_task("A"), simple_task("B")],
                {"A": None, "B": None},
                [],
            )

    def test_hierarchy_must_cover_all_tasks(self, schema):
        with pytest.raises(SpecificationError):
            ArtifactSystem(schema, [simple_task("A"), simple_task("B")], {"A": None}, [])

    def test_unknown_parent_rejected(self, schema):
        with pytest.raises(SpecificationError):
            ArtifactSystem(schema, [simple_task("A")], {"A": "Ghost"}, [])

    def test_condition_over_unknown_variable_rejected(self, schema):
        service = InternalService("bad", "Main", pre=Eq(Var("nope"), NULL))
        with pytest.raises(SpecificationError, match="nope"):
            ArtifactSystem(schema, [simple_task()], {"Main": None}, [service])

    def test_condition_over_unknown_relation_rejected(self, schema):
        from repro.has.conditions import RelationAtom

        service = InternalService("bad", "Main", pre=RelationAtom("GHOST", [Var("item")]))
        with pytest.raises(SpecificationError, match="GHOST"):
            ArtifactSystem(schema, [simple_task()], {"Main": None}, [service])

    def test_atom_arity_checked(self, schema):
        from repro.has.conditions import RelationAtom

        service = InternalService("bad", "Main", pre=RelationAtom("ITEMS", [Var("item")]))
        with pytest.raises(SpecificationError, match="arity"):
            ArtifactSystem(schema, [simple_task()], {"Main": None}, [service])

    def test_update_requires_propagated_equal_inputs(self, schema):
        task = TaskSchema(
            "Main",
            [Variable("x"), Variable("item", IdType("ITEMS"))],
            [ArtifactRelation("POOL", [Variable("x")])],
        )
        service = InternalService(
            "bad", "Main", update=Insert("POOL", ["x"]), propagated=["x"]
        )
        with pytest.raises(SpecificationError, match="propagated"):
            ArtifactSystem(schema, [task], {"Main": None}, [service])

    def test_update_type_mismatch_rejected(self, schema):
        task = TaskSchema(
            "Main",
            [Variable("x"), Variable("item", IdType("ITEMS"))],
            [ArtifactRelation("POOL", [Variable("x")])],
        )
        service = InternalService("bad", "Main", update=Insert("POOL", ["item"]))
        with pytest.raises(SpecificationError, match="type"):
            ArtifactSystem(schema, [task], {"Main": None}, [service])

    def test_opening_map_must_cover_inputs(self, schema):
        parent = simple_task("Parent")
        child = TaskSchema("Child", [Variable("y", IdType("ITEMS"))], input_variables=["y"])
        opening = OpeningService("Child", TrueCond(), {})
        with pytest.raises(SpecificationError, match="input map"):
            ArtifactSystem(
                schema,
                [parent, child],
                {"Parent": None, "Child": "Parent"},
                [],
                opening_services=[opening],
            )

    def test_closing_returned_variables_disjoint_from_parent_inputs(self, schema):
        parent = TaskSchema(
            "Parent", [Variable("p", IdType("ITEMS"))], input_variables=["p"]
        )
        grand = TaskSchema("Grand", [Variable("g", IdType("ITEMS"))])
        child = TaskSchema(
            "Child", [Variable("c", IdType("ITEMS"))], output_variables=["c"]
        )
        closing = ClosingService("Child", TrueCond(), {"c": "p"})
        with pytest.raises(SpecificationError, match="input"):
            ArtifactSystem(
                schema,
                [grand, parent, child],
                {"Grand": None, "Parent": "Grand", "Child": "Parent"},
                [],
                opening_services=[OpeningService("Parent", TrueCond(), {"p": "g"})],
                closing_services=[closing],
            )

    def test_defaults_for_missing_services(self, schema):
        system = ArtifactSystem(schema, [simple_task()], {"Main": None}, [])
        assert isinstance(system.closing_service("Main").pre, FalseCond)
        assert isinstance(system.opening_service("Main").pre, TrueCond)


class TestAccessors:
    def test_hierarchy_navigation(self, tiny_system):
        assert tiny_system.root == "Main"
        assert tiny_system.children_of("Main") == ()
        assert tiny_system.parent_of("Main") is None
        assert tiny_system.descendants_of("Main") == ()

    def test_observable_services(self, tiny_system):
        names = tiny_system.observable_service_names("Main")
        assert "pick" in names and "open_Main" in names and "close_Main" in names

    def test_statistics(self, tiny_system):
        stats = tiny_system.statistics()
        assert stats["tasks"] == 1
        assert stats["variables"] == 2
        assert stats["services"] == 3 + 2  # three internal + opening/closing

    def test_multi_level_descendants(self, items_schema):
        builder = ArtifactSystemBuilder("tree", items_schema)
        builder.task("A").variable("x")
        builder.task("B", parent="A").variable("y")
        builder.task("C", parent="B").variable("z")
        system = builder.build()
        assert system.descendants_of("A") == ("B", "C")
        assert system.children_of("A") == ("B",)


class TestBuilder:
    def test_duplicate_task_rejected(self, items_schema):
        builder = ArtifactSystemBuilder("dup", items_schema)
        builder.task("A").variable("x")
        with pytest.raises(ValueError):
            builder.task("A")

    def test_parent_must_exist(self, items_schema):
        builder = ArtifactSystemBuilder("orphan", items_schema)
        with pytest.raises(ValueError):
            builder.task("B", parent="A")

    def test_artifact_relation_requires_declared_variables(self, items_schema):
        builder = ArtifactSystemBuilder("rel", items_schema)
        task = builder.task("Main")
        task.variable("x")
        with pytest.raises(KeyError):
            task.artifact_relation("POOL", ["x", "ghost"])

    def test_insert_and_retrieve_mutually_exclusive(self, items_schema):
        builder = ArtifactSystemBuilder("bad", items_schema)
        task = builder.task("Main")
        task.variable("x")
        task.artifact_relation("POOL", ["x"])
        with pytest.raises(ValueError):
            task.internal_service("oops", insert=("POOL", ["x"]), retrieve=("POOL", ["x"]))

    def test_default_global_precondition_initialises_root_to_null(self, tiny_system):
        precondition = tiny_system.global_precondition
        assert precondition.variables() == {"item", "status"}

    def test_explicit_global_precondition_is_kept(self, items_schema):
        builder = ArtifactSystemBuilder(
            "custom", items_schema, global_precondition=Eq(Var("status"), Const("boot"))
        )
        builder.task("Main").variable("status")
        system = builder.build()
        assert system.global_precondition == Eq(Var("status"), Const("boot"))

    def test_default_io_maps_use_matching_names(self, items_schema):
        builder = ArtifactSystemBuilder("io", items_schema)
        parent = builder.task("Parent")
        parent.id_variable("item", "ITEMS")
        parent.variable("result")
        child = builder.task("Child", parent="Parent")
        child.id_variable("item", "ITEMS", input=True)
        child.variable("result", output=True)
        system = builder.build()
        assert system.opening_service("Child").input_mapping() == {"item": "item"}
        assert system.closing_service("Child").output_mapping() == {"result": "result"}
