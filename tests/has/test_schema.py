"""Unit tests for database schemas (keys, foreign keys, acyclicity)."""

import pytest

from repro.has.schema import (
    Attribute,
    DatabaseSchema,
    Relation,
    SchemaError,
    fk_attr,
    value_attr,
)
from repro.has.types import IdType, VALUE


class TestAttribute:
    def test_value_attribute(self):
        attr = value_attr("price")
        assert not attr.is_foreign_key
        assert attr.target is None

    def test_foreign_key_attribute(self):
        attr = fk_attr("record", "CREDIT_RECORD")
        assert attr.is_foreign_key
        assert attr.target == "CREDIT_RECORD"

    def test_foreign_key_requires_target(self):
        with pytest.raises(SchemaError):
            Attribute("record", "fk", None)

    def test_value_attribute_rejects_target(self):
        with pytest.raises(SchemaError):
            Attribute("price", "value", "ITEMS")

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", "weird")


class TestRelation:
    def test_arity_counts_implicit_key(self):
        relation = Relation("ITEMS", (value_attr("price"),))
        assert relation.arity == 2

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", (value_attr("a"), value_attr("a")))

    def test_explicit_id_attribute_rejected(self):
        with pytest.raises(SchemaError):
            Relation("R", (value_attr("ID"),))

    def test_attribute_lookup(self):
        relation = Relation("R", (value_attr("a"), fk_attr("f", "S")))
        assert relation.attribute("f").is_foreign_key
        assert relation.has_attribute("a")
        assert not relation.has_attribute("zzz")
        with pytest.raises(KeyError):
            relation.attribute("zzz")

    def test_attribute_partition(self):
        relation = Relation("R", (value_attr("a"), fk_attr("f", "S"), value_attr("b")))
        assert [a.name for a in relation.value_attributes] == ["a", "b"]
        assert [a.name for a in relation.foreign_keys] == ["f"]


class TestDatabaseSchema:
    def test_from_dict_builds_foreign_keys(self, navigation_schema):
        record = navigation_schema.relation("CUSTOMERS").attribute("record")
        assert record.is_foreign_key
        assert record.target == "CREDIT_RECORD"

    def test_attribute_types(self, navigation_schema):
        assert navigation_schema.attribute_type("CUSTOMERS", "name") == VALUE
        assert navigation_schema.attribute_type("CUSTOMERS", "record") == IdType("CREDIT_RECORD")

    def test_dangling_foreign_key_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([Relation("R", (fk_attr("f", "MISSING"),))])

    def test_cycle_rejected(self):
        with pytest.raises(SchemaError, match="cycle"):
            DatabaseSchema(
                [
                    Relation("A", (fk_attr("to_b", "B"),)),
                    Relation("B", (fk_attr("to_a", "A"),)),
                ]
            )

    def test_self_loop_rejected(self):
        with pytest.raises(SchemaError, match="cycle"):
            DatabaseSchema([Relation("A", (fk_attr("self", "A"),))])

    def test_duplicate_relation_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseSchema([Relation("A", ()), Relation("A", ())])

    def test_navigation_depth(self, navigation_schema):
        assert navigation_schema.navigation_depth() == 1

    def test_navigation_depth_chain(self):
        schema = DatabaseSchema.from_dict(
            {"A": {"to_b": "B"}, "B": {"to_c": "C"}, "C": {"x": None}}
        )
        assert schema.navigation_depth() == 2

    def test_contains_and_len(self, navigation_schema):
        assert "CUSTOMERS" in navigation_schema
        assert "NOPE" not in navigation_schema
        assert len(navigation_schema) == 2

    def test_unknown_relation_lookup(self, navigation_schema):
        with pytest.raises(KeyError):
            navigation_schema.relation("NOPE")

    def test_describe_lists_all_relations(self, navigation_schema):
        text = navigation_schema.describe()
        assert "CUSTOMERS(ID, name, record -> CREDIT_RECORD)" in text
        assert "CREDIT_RECORD(ID, status)" in text
