"""Unit tests for the condition AST: NNF, DNF, evaluation, renaming."""

import pytest

from repro.has.conditions import (
    And,
    Const,
    Eq,
    FalseCond,
    Neq,
    Not,
    NULL,
    Or,
    RelationAtom,
    TrueCond,
    Var,
    as_term,
    conjunction,
    disjunction,
)
from repro.has.database import Database
from repro.has.schema import DatabaseSchema


@pytest.fixture
def db(navigation_schema):
    return Database(
        navigation_schema,
        {
            "CREDIT_RECORD": [("r1", "Good"), ("r2", "Bad")],
            "CUSTOMERS": [("c1", "Ann", "r1"), ("c2", "Bob", "r2")],
        },
    )


class TestTerms:
    def test_as_term_variable(self):
        assert as_term("x") == Var("x")

    def test_as_term_quoted_string_is_constant(self):
        assert as_term('"Good"') == Const("Good")

    def test_as_term_none_is_null(self):
        assert as_term(None) is NULL

    def test_as_term_number(self):
        assert as_term(7) == Const(7)

    def test_as_term_passthrough(self):
        assert as_term(Var("x")) == Var("x")

    def test_as_term_rejects_unknown(self):
        with pytest.raises(TypeError):
            as_term(object())

    def test_null_is_marked(self):
        assert NULL.is_null
        assert not Const("x").is_null


class TestStructure:
    def test_variables_collects_all(self):
        condition = And(Eq(Var("x"), Var("y")), Neq(Var("z"), Const("c")))
        assert condition.variables() == {"x", "y", "z"}

    def test_constants_collects_all(self):
        condition = Or(Eq(Var("x"), Const("a")), Eq(Var("y"), NULL))
        assert condition.constants() == {Const("a"), NULL}

    def test_atoms_are_flattened(self):
        condition = And(Eq(Var("x"), Var("y")), Not(Neq(Var("z"), NULL)))
        assert len(condition.atoms()) == 2

    def test_rename(self):
        condition = And(Eq(Var("x"), Var("y")), RelationAtom("R", [Var("x"), Var("z")]))
        renamed = condition.rename({"x": "x2"})
        assert renamed.variables() == {"x2", "y", "z"}

    def test_substitute_with_constant(self):
        condition = Eq(Var("x"), Var("y"))
        substituted = condition.substitute({"y": Const("v")})
        assert substituted == Eq(Var("x"), Const("v"))

    def test_operator_overloads(self):
        condition = Eq(Var("x"), NULL) & ~Neq(Var("y"), NULL) | TrueCond()
        assert isinstance(condition, Or)


class TestNNF:
    def test_negated_equality(self):
        assert Not(Eq(Var("x"), Var("y"))).nnf() == Neq(Var("x"), Var("y"))

    def test_double_negation(self):
        assert Not(Not(Eq(Var("x"), NULL))).nnf() == Eq(Var("x"), NULL)

    def test_de_morgan_and(self):
        condition = Not(And(Eq(Var("x"), NULL), Neq(Var("y"), NULL)))
        assert condition.nnf() == Or(Neq(Var("x"), NULL), Eq(Var("y"), NULL))

    def test_de_morgan_or(self):
        condition = Not(Or(Eq(Var("x"), NULL), Eq(Var("y"), NULL)))
        assert condition.nnf() == And(Neq(Var("x"), NULL), Neq(Var("y"), NULL))

    def test_negated_relation_atom_stays_wrapped(self):
        atom = RelationAtom("R", [Var("x"), Var("y")])
        assert Not(atom).nnf() == Not(atom)

    def test_true_false_negation(self):
        assert TrueCond().nnf(negate=True) == FalseCond()
        assert FalseCond().nnf(negate=True) == TrueCond()


class TestDNF:
    def test_dnf_of_disjunction(self):
        condition = Or(Eq(Var("x"), NULL), Eq(Var("y"), NULL))
        assert len(condition.dnf()) == 2

    def test_dnf_distributes(self):
        condition = And(
            Or(Eq(Var("x"), NULL), Eq(Var("y"), NULL)),
            Or(Eq(Var("z"), NULL), Eq(Var("w"), NULL)),
        )
        assert len(condition.dnf()) == 4

    def test_dnf_of_false_is_empty(self):
        assert FalseCond().dnf() == []

    def test_dnf_of_true_is_single_empty_conjunct(self):
        assert TrueCond().dnf() == [()]

    def test_dnf_conjunct_sizes(self):
        condition = And(Eq(Var("x"), NULL), Or(Eq(Var("y"), NULL), Neq(Var("z"), NULL)))
        conjuncts = condition.dnf()
        assert sorted(len(c) for c in conjuncts) == [2, 2]


class TestEvaluation:
    def test_equality(self, db):
        assert Eq(Var("x"), Const("a")).evaluate({"x": "a"}, db)
        assert not Eq(Var("x"), Const("a")).evaluate({"x": "b"}, db)

    def test_null_equality(self, db):
        assert Eq(Var("x"), NULL).evaluate({"x": None}, db)

    def test_relation_atom_true(self, db):
        atom = RelationAtom("CUSTOMERS", [Var("c"), Var("n"), Var("r")])
        assert atom.evaluate({"c": "c1", "n": "Ann", "r": "r1"}, db)

    def test_relation_atom_false_on_mismatch(self, db):
        atom = RelationAtom("CUSTOMERS", [Var("c"), Var("n"), Var("r")])
        assert not atom.evaluate({"c": "c1", "n": "Ann", "r": "r2"}, db)

    def test_relation_atom_false_on_null(self, db):
        atom = RelationAtom("CREDIT_RECORD", [Var("r"), Const("Good")])
        assert not atom.evaluate({"r": None}, db)

    def test_boolean_combination(self, db):
        condition = And(Eq(Var("x"), Const("a")), Not(Eq(Var("y"), Const("b"))))
        assert condition.evaluate({"x": "a", "y": "c"}, db)
        assert not condition.evaluate({"x": "a", "y": "b"}, db)

    def test_unbound_variable_raises(self, db):
        with pytest.raises(KeyError):
            Eq(Var("missing"), NULL).evaluate({}, db)


class TestHelpers:
    def test_conjunction_of_nothing_is_true(self):
        assert conjunction([]) == TrueCond()

    def test_disjunction_of_nothing_is_false(self):
        assert disjunction([]) == FalseCond()

    def test_conjunction_builds_nested_and(self):
        result = conjunction([Eq(Var("x"), NULL), Eq(Var("y"), NULL), Eq(Var("z"), NULL)])
        assert result.variables() == {"x", "y", "z"}

    def test_relation_atom_requires_args(self):
        with pytest.raises(ValueError):
            RelationAtom("R", [])

    def test_str_renderings(self):
        assert str(Eq(Var("x"), Const("a"))) == 'x = "a"'
        assert str(Neq(Var("x"), NULL)) == "x != null"
        assert "R(x, y)" in str(RelationAtom("R", [Var("x"), Var("y")]))
