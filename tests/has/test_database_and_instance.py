"""Tests for concrete databases, instances and the concrete transition engine."""

import pytest

from repro.has.database import Database, DatabaseError
from repro.has.instance import TransitionEngine, initial_instance
from repro.has.schema import DatabaseSchema


@pytest.fixture
def db(navigation_schema):
    return Database(
        navigation_schema,
        {
            "CREDIT_RECORD": [("r1", "Good"), ("r2", "Bad")],
            "CUSTOMERS": [("c1", "Ann", "r1"), ("c2", "Bob", "r2")],
        },
    )


class TestDatabase:
    def test_lookup_and_contains(self, db):
        assert db.lookup("CUSTOMERS", "c1") == ("c1", "Ann", "r1")
        assert db.contains_tuple("CUSTOMERS", ("c1", "Ann", "r1"))
        assert not db.contains_tuple("CUSTOMERS", ("c1", "Ann", "r2"))
        assert db.lookup("CUSTOMERS", "zzz") is None

    def test_attribute_navigation(self, db):
        assert db.attribute_of("CUSTOMERS", "c1", "record") == "r1"
        assert db.attribute_of("CREDIT_RECORD", "r1", "status") == "Good"
        assert db.attribute_of("CREDIT_RECORD", "missing", "status") is None

    def test_key_violation_rejected(self, navigation_schema):
        with pytest.raises(DatabaseError):
            Database(
                navigation_schema,
                {"CREDIT_RECORD": [("r1", "Good"), ("r1", "Bad")]},
            )

    def test_duplicate_identical_tuple_allowed(self, navigation_schema):
        database = Database(
            navigation_schema, {"CREDIT_RECORD": [("r1", "Good"), ("r1", "Good")]}
        )
        assert len(database) == 1

    def test_foreign_key_violation_rejected(self, navigation_schema):
        with pytest.raises(DatabaseError):
            Database(navigation_schema, {"CUSTOMERS": [("c1", "Ann", "missing")]})

    def test_null_id_rejected(self, navigation_schema):
        with pytest.raises(DatabaseError):
            Database(navigation_schema, {"CREDIT_RECORD": [(None, "Good")]})

    def test_arity_mismatch_rejected(self, navigation_schema):
        with pytest.raises(DatabaseError):
            Database(navigation_schema, {"CREDIT_RECORD": [("r1",)]})

    def test_active_domain_and_typed_values(self, db):
        domain = db.active_domain()
        assert {"c1", "r1", "Ann", "Good"} <= domain
        assert set(db.ids("CUSTOMERS")) == {"c1", "c2"}
        assert "Good" in db.values_of_type(None)
        assert set(db.values_of_type("CREDIT_RECORD")) == {"r1", "r2"}


class TestTransitionEngine:
    def test_initial_instance(self, tiny_system, items_schema):
        instance = initial_instance(tiny_system)
        assert instance.is_active("Main")
        assert instance.valuation("Main") == {"item": None, "status": None}

    def test_internal_successors_respect_pre_and_post(self, tiny_system, items_schema):
        database = Database(items_schema, {"ITEMS": [("i1", 5, "tools"), ("i2", 9, "toys")]})
        engine = TransitionEngine(tiny_system, database)
        instance = initial_instance(tiny_system)
        pick = tiny_system.internal_services("Main")[0]
        successors = engine.internal_successors(instance, pick)
        assert successors
        for successor in successors:
            valuation = successor.valuation("Main")
            assert valuation["status"] == "picked"
            assert valuation["item"] in {"i1", "i2"}

    def test_inapplicable_service_has_no_successors(self, tiny_system, items_schema):
        database = Database(items_schema, {"ITEMS": [("i1", 5, "tools")]})
        engine = TransitionEngine(tiny_system, database)
        instance = initial_instance(tiny_system)
        ship = tiny_system.internal_services("Main")[1]
        assert engine.internal_successors(instance, ship) == []

    def test_insert_and_retrieve_roundtrip(self, relation_system, items_schema):
        database = Database(items_schema, {"ITEMS": [("i1", 5, "tools")]})
        engine = TransitionEngine(relation_system, database)
        instance = initial_instance(relation_system)
        create, stash, grab, _finish = relation_system.internal_services("Main")
        [created] = [
            s for s in engine.internal_successors(instance, create)
            if s.valuation("Main")["item"] == "i1"
        ]
        stashed = engine.internal_successors(created, stash)
        assert stashed
        stored = stashed[0].relation_contents("Main", "POOL")
        assert stored == (("i1", "new"),)
        grabbed = engine.internal_successors(stashed[0], grab)
        assert grabbed
        assert grabbed[0].valuation("Main")["item"] == "i1"
        assert grabbed[0].relation_contents("Main", "POOL") == ()
