"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests from a source checkout without installing the package.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.has.builder import ArtifactSystemBuilder
from repro.has.conditions import And, Const, Eq, Neq, NULL, Var
from repro.has.schema import DatabaseSchema


@pytest.fixture(scope="session")
def worker_model() -> str:
    """Worker model for the server e2e suites (thread by default).

    ``REPRO_TEST_WORKER_MODEL=process`` re-runs them on the multi-process
    pool -- CI does this on one matrix version -- proving the two models are
    observationally equivalent through the HTTP API.
    """
    model = os.environ.get("REPRO_TEST_WORKER_MODEL", "thread")
    if model not in ("thread", "process"):
        raise ValueError(f"REPRO_TEST_WORKER_MODEL must be thread|process, not {model!r}")
    return model


@pytest.fixture
def items_schema() -> DatabaseSchema:
    """A one-relation schema used by many unit tests."""
    return DatabaseSchema.from_dict({"ITEMS": {"price": None, "category": None}})


@pytest.fixture
def navigation_schema() -> DatabaseSchema:
    """A two-relation schema with a foreign key, for navigation-expression tests."""
    return DatabaseSchema.from_dict(
        {
            "CUSTOMERS": {"name": None, "record": "CREDIT_RECORD"},
            "CREDIT_RECORD": {"status": None},
        }
    )


@pytest.fixture
def tiny_system(items_schema: DatabaseSchema):
    """A single-task system with an infinite pick/ship/reset loop."""
    builder = ArtifactSystemBuilder("tiny", items_schema)
    task = builder.task("Main")
    task.id_variable("item", "ITEMS")
    task.variable("status")
    task.internal_service(
        "pick",
        pre=Eq(Var("status"), NULL),
        post=And(Neq(Var("item"), NULL), Eq(Var("status"), Const("picked"))),
    )
    task.internal_service(
        "ship",
        pre=Eq(Var("status"), Const("picked")),
        post=Eq(Var("status"), Const("shipped")),
    )
    task.internal_service(
        "reset",
        pre=Eq(Var("status"), Const("shipped")),
        post=And(Eq(Var("status"), NULL), Eq(Var("item"), NULL)),
    )
    return builder.build()


def build_exploding_system(variables: int = 12, constants: int = 6):
    """A single-task system whose symbolic state space takes many seconds to
    exhaust (used by cancellation / deadline tests: big enough that a search
    is reliably still running when a cancel or deadline lands, yet each loop
    iteration — the cancellation granularity — stays in the milliseconds)."""
    schema = DatabaseSchema.from_dict({"ITEMS": {"price": None}})
    builder = ArtifactSystemBuilder("exploding", schema)
    task = builder.task("Main")
    task.id_variable("item", "ITEMS")
    for index in range(variables):
        task.variable(f"v{index}")
        for j in range(constants):
            constant = f"c{j}"
            task.internal_service(
                f"set_{index}_{constant}",
                pre=Neq(Var(f"v{index}"), Const(constant)),
                post=Eq(Var(f"v{index}"), Const(constant)),
            )
    return builder.build()


@pytest.fixture
def exploding_system():
    return build_exploding_system()


@pytest.fixture
def small_exploding_system():
    """A smaller exploding variant whose search *exhausts* in a few seconds
    (CPU-bound throughout): sized for timed speedup comparisons."""
    return build_exploding_system(variables=8, constants=5)


@pytest.fixture
def relation_system(items_schema: DatabaseSchema):
    """A single-task system exercising artifact-relation insert / retrieve."""
    builder = ArtifactSystemBuilder("with-relation", items_schema)
    task = builder.task("Main")
    task.id_variable("item", "ITEMS")
    task.variable("status")
    task.artifact_relation("POOL", ["item", "status"])
    task.internal_service(
        "create",
        pre=Eq(Var("item"), NULL),
        post=And(Neq(Var("item"), NULL), Eq(Var("status"), Const("new"))),
    )
    task.internal_service(
        "stash",
        pre=Neq(Var("item"), NULL),
        post=Eq(Var("item"), NULL),
        insert=("POOL", ["item", "status"]),
    )
    task.internal_service(
        "grab",
        pre=Eq(Var("item"), NULL),
        retrieve=("POOL", ["item", "status"]),
    )
    task.internal_service(
        "finish",
        pre=Eq(Var("status"), Const("new")),
        post=Eq(Var("status"), Const("done")),
        propagated=["item"],
    )
    return builder.build()
