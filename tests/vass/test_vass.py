"""Tests for the plain VASS model and the reference Karp–Miller coverability procedure."""

import pytest

from repro.vass import (
    OMEGA,
    Transition,
    VASS,
    add_omega,
    coverability_set,
    is_coverable,
    leq_omega,
)
from repro.vass.vass import vector_leq


class TestOmegaArithmetic:
    def test_leq(self):
        assert leq_omega(3, OMEGA)
        assert not leq_omega(OMEGA, 3)
        assert leq_omega(OMEGA, OMEGA)
        assert leq_omega(2, 2)

    def test_add(self):
        assert add_omega(OMEGA, 5) is OMEGA
        assert add_omega(2, -1) == 1

    def test_vector_leq(self):
        assert vector_leq((1, 2), (1, OMEGA))
        assert not vector_leq((OMEGA, 0), (3, 0))


class TestVASSBasics:
    def simple(self):
        return VASS(
            states=["p", "q"],
            dimension=1,
            transitions=[
                Transition("p", (1,), "p"),     # produce a token
                Transition("p", (0,), "q"),     # move to q
                Transition("q", (-1,), "q"),    # consume a token
            ],
            initial_state="p",
            initial_vector=[0],
        )

    def test_fire_respects_non_negativity(self):
        vass = self.simple()
        consume = vass.transitions[2]
        assert vass.fire("q", (0,), consume) is None
        assert vass.fire("q", (2,), consume) == ("q", (1,))

    def test_successors(self):
        vass = self.simple()
        successors = vass.successors("p", (0,))
        assert {target for target, _v, _t in successors} == {"p", "q"}

    def test_validation(self):
        with pytest.raises(ValueError):
            VASS(["p"], 1, [Transition("p", (1, 1), "p")], "p", [0])
        with pytest.raises(ValueError):
            VASS(["p"], 1, [], "ghost", [0])
        with pytest.raises(ValueError):
            VASS(["p"], 1, [], "p", [0, 0])


class TestCoverability:
    def test_unbounded_counter_is_accelerated(self):
        vass = VASS(
            ["p"], 1, [Transition("p", (1,), "p")], "p", [0]
        )
        configurations = coverability_set(vass)
        assert any(vector[0] is OMEGA for _state, vector in configurations)

    def test_coverable_targets(self):
        vass = VASS(
            ["p", "q"],
            1,
            [Transition("p", (1,), "p"), Transition("p", (0,), "q")],
            "p",
            [0],
        )
        assert is_coverable(vass, "q", [5])
        assert is_coverable(vass, "p", [100])

    def test_uncoverable_target(self):
        vass = VASS(
            ["p", "q"],
            1,
            [Transition("p", (0,), "q")],
            "p",
            [0],
        )
        assert not is_coverable(vass, "q", [1])
        assert is_coverable(vass, "q", [0])

    def test_bounded_counter_not_accelerated(self):
        # The counter can only ever reach exactly 1.
        vass = VASS(
            ["p", "q"],
            1,
            [Transition("p", (1,), "q")],
            "p",
            [0],
        )
        assert not is_coverable(vass, "q", [2])

    def test_two_counter_transfer(self):
        # Counter 0 is pumped, then transferred to counter 1 one at a time.
        vass = VASS(
            ["p", "q"],
            2,
            [
                Transition("p", (1, 0), "p"),
                Transition("p", (0, 0), "q"),
                Transition("q", (-1, 1), "q"),
            ],
            "p",
            [0, 0],
        )
        assert is_coverable(vass, "q", [0, 3])
        assert not is_coverable(vass, "p", [0, 1])

    def test_node_budget_guard(self):
        vass = VASS(
            ["p"], 1, [Transition("p", (1,), "p")], "p", [0]
        )
        with pytest.raises(RuntimeError):
            coverability_set(vass, max_nodes=1)
