"""Unit tests of the token bucket and per-tenant limiter (fake clock)."""

from __future__ import annotations

import pytest

from repro.tenancy import TenantRateLimiter, TokenBucket
from repro.tenancy.registry import Tenant


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_tenant(tenant_id="t1", rate_limit=None, burst=None) -> Tenant:
    return Tenant(
        id=tenant_id, name=tenant_id, key_id="deadbeef", weight=1.0,
        rate_limit=rate_limit, burst=burst, max_pending=None,
        revoked=False, created_at=0.0,
    )


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=4.0, clock=clock)
        for _ in range(4):
            assert bucket.try_acquire() == 0.0
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.5)  # 1 token at 2/s
        clock.advance(0.5)
        assert bucket.try_acquire() == 0.0

    def test_rejection_takes_nothing(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock.advance(1.0)
        # Had the rejection consumed tokens, this would still be throttled.
        assert bucket.try_acquire() == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available() == pytest.approx(2.0)

    def test_oversized_request_reports_full_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        bucket.try_acquire(2.0)
        # Asking for more than capacity can never succeed; the hint is the
        # time to a full bucket, not infinity.
        assert bucket.try_acquire(10.0) == pytest.approx(2.0)

    @pytest.mark.parametrize("kwargs", [{"rate": 0.0}, {"rate": -1.0}, {"burst": 0.0}])
    def test_invalid_config_rejected(self, kwargs):
        config = {"rate": 1.0, "burst": 1.0}
        config.update(kwargs)
        with pytest.raises(ValueError):
            TokenBucket(**config)


class TestTenantRateLimiter:
    def test_unlimited_tenant_never_throttles(self):
        limiter = TenantRateLimiter(clock=FakeClock())
        tenant = make_tenant(rate_limit=None)
        assert all(limiter.check(tenant) == 0.0 for _ in range(1000))

    def test_limited_tenant_throttles_with_retry_after(self):
        clock = FakeClock()
        limiter = TenantRateLimiter(clock=clock)
        tenant = make_tenant(rate_limit=2.0, burst=2.0)
        assert limiter.check(tenant) == 0.0
        assert limiter.check(tenant) == 0.0
        assert limiter.check(tenant) == pytest.approx(0.5)
        clock.advance(0.5)
        assert limiter.check(tenant) == 0.0

    def test_batch_submit_charges_token_per_job(self):
        clock = FakeClock()
        limiter = TenantRateLimiter(clock=clock)
        tenant = make_tenant(rate_limit=1.0, burst=5.0)
        assert limiter.check(tenant, tokens=5.0) == 0.0
        assert limiter.check(tenant, tokens=1.0) == pytest.approx(1.0)

    def test_buckets_are_per_tenant(self):
        clock = FakeClock()
        limiter = TenantRateLimiter(clock=clock)
        a = make_tenant("a", rate_limit=1.0, burst=1.0)
        b = make_tenant("b", rate_limit=1.0, burst=1.0)
        assert limiter.check(a) == 0.0
        assert limiter.check(b) == 0.0  # b's bucket untouched by a's spend

    def test_config_change_rebuilds_bucket(self):
        clock = FakeClock()
        limiter = TenantRateLimiter(clock=clock)
        assert limiter.check(make_tenant(rate_limit=1.0, burst=1.0)) == 0.0
        assert limiter.check(make_tenant(rate_limit=1.0, burst=1.0)) > 0.0
        # Same tenant id, new policy: the old (empty) bucket is discarded.
        assert limiter.check(make_tenant(rate_limit=10.0, burst=10.0)) == 0.0

    def test_retry_after_header_rounds_up_to_at_least_one(self):
        limiter = TenantRateLimiter()
        assert limiter.retry_after_header(0.01) == "1"
        assert limiter.retry_after_header(1.0) == "1"
        assert limiter.retry_after_header(1.2) == "2"
        assert limiter.retry_after_header(7.0) == "7"
