"""Unit tests of :mod:`repro.tenancy.registry`: key format, hashing,
resolution (including the TTL cache), revocation and validation."""

from __future__ import annotations

import pytest

from repro.server import JobStore
from repro.tenancy import DEFAULT_TEST_API_KEY, TenantRegistry, parse_api_key


@pytest.fixture
def store(tmp_path):
    store = JobStore(tmp_path / "jobs.db")
    yield store
    store.close()


@pytest.fixture
def registry(store):
    return TenantRegistry(store)


class TestKeyFormat:
    def test_parse_round_trip(self):
        assert parse_api_key("vk_abcd1234.secret") == ("abcd1234", "secret")
        assert parse_api_key(DEFAULT_TEST_API_KEY) is not None

    @pytest.mark.parametrize(
        "bad", ["", "vk_", "vk_nodot", "vk_.nosecret", "vk_noid.", "pk_x.y", None, 42]
    )
    def test_malformed_keys_parse_to_none(self, bad):
        assert parse_api_key(bad) is None


class TestLifecycle:
    def test_create_returns_key_once_and_stores_only_hash(self, store, registry):
        tenant, api_key = registry.create("acme", weight=2.0, rate_limit=5.0)
        assert api_key.startswith("vk_")
        assert tenant.name == "acme" and tenant.weight == 2.0
        with store.read_connection() as conn:
            row = conn.execute("SELECT * FROM tenants WHERE id = ?", (tenant.id,)).fetchone()
        assert api_key not in (row["key_hash"], row["key_salt"])
        assert row["key_id"] == tenant.key_id  # lookup handle is plaintext

    def test_resolve_known_unknown_and_wrong_secret(self, registry):
        tenant, api_key = registry.create("acme")
        resolved = registry.resolve(api_key)
        assert resolved is not None and resolved.id == tenant.id
        assert registry.resolve("vk_ffffffff.nope") is None
        key_id = parse_api_key(api_key)[0]
        assert registry.resolve(f"vk_{key_id}.wrongsecret") is None
        assert registry.resolve("garbage") is None

    def test_duplicate_name_rejected(self, registry):
        registry.create("acme")
        with pytest.raises(ValueError):
            registry.create("acme")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"weight": 0.0},
            {"weight": -1.0},
            {"rate_limit": 0.0},
            {"burst": -2.0},
            {"max_pending": 0},
            {"api_key": "not-a-key"},
        ],
    )
    def test_invalid_config_rejected(self, registry, kwargs):
        with pytest.raises(ValueError):
            registry.create("acme", **kwargs)

    def test_blank_name_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.create("   ")

    def test_revoked_tenant_resolves_with_flag(self, registry):
        tenant, api_key = registry.create("acme")
        assert registry.revoke("acme") is not None
        resolved = registry.resolve(api_key)
        # Not None: the caller must answer 403 (known key), not 401.
        assert resolved is not None and resolved.revoked
        assert registry.get(tenant.id).revoked

    def test_revoke_unknown_returns_none(self, registry):
        assert registry.revoke("ghost") is None

    def test_get_by_name_or_id_and_list(self, registry):
        tenant, _ = registry.create("acme")
        registry.create("beta")
        assert registry.get("acme").id == tenant.id
        assert registry.get(tenant.id).name == "acme"
        assert [t.name for t in registry.list()] == ["acme", "beta"]

    def test_ensure_is_idempotent(self, registry):
        first = registry.ensure("test", DEFAULT_TEST_API_KEY, tenant_id="test-id")
        second = registry.ensure("test", DEFAULT_TEST_API_KEY, tenant_id="test-id")
        assert first.id == second.id == "test-id"
        assert registry.resolve(DEFAULT_TEST_API_KEY).id == "test-id"


class TestResolutionCache:
    def test_cache_serves_within_ttl_and_revoke_clears_it(self, store):
        registry = TenantRegistry(store, cache_ttl_seconds=60.0)
        _, api_key = registry.create("acme")
        assert not registry.resolve(api_key).revoked  # primes the cache
        # A *different* registry on the same store revokes; this registry's
        # cache still serves the old row (the documented TTL window) ...
        TenantRegistry(store).revoke("acme")
        assert not registry.resolve(api_key).revoked
        # ... but a registry that revoked locally sees it instantly.
        registry.revoke("acme")
        assert registry.resolve(api_key).revoked

    def test_zero_ttl_disables_caching(self, store):
        registry = TenantRegistry(store, cache_ttl_seconds=0.0)
        _, api_key = registry.create("acme")
        assert not registry.resolve(api_key).revoked
        TenantRegistry(store).revoke("acme")
        assert registry.resolve(api_key).revoked  # no stale cache


class TestEffectiveBurst:
    def test_burst_defaults_to_rate_and_floors_at_one(self, registry):
        tenant, _ = registry.create("a", rate_limit=5.0)
        assert tenant.effective_burst == 5.0
        tenant, _ = registry.create("b", rate_limit=0.2)
        assert tenant.effective_burst == 1.0  # floor: one whole submit
        tenant, _ = registry.create("c", rate_limit=2.0, burst=7.0)
        assert tenant.effective_burst == 7.0
        tenant, _ = registry.create("d")
        assert tenant.effective_burst is None  # unlimited
