"""Tests of the LTL -> Büchi translation.

The key correctness test is differential: for random small formulas and random
lasso words, automaton acceptance must coincide with direct LTL evaluation on
the ultimately periodic word.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.ltl.buchi import BuchiAutomaton, TransitionLabel, ltl_to_buchi
from repro.ltl.evaluate import evaluate_finite_trace, evaluate_lasso
from repro.ltl.parser import parse_ltl
from repro.ltl.syntax import (
    And,
    Finally,
    Formula,
    Globally,
    Implies,
    LFalse,
    LTrue,
    Next,
    Not,
    Or,
    Prop,
    Release,
    Until,
)

PROPS = ["p", "q"]


def _assignments(names):
    return [set(combo) for combo in _powerset(names)]


def _powerset(names):
    result = [[]]
    for name in names:
        result += [subset + [name] for subset in result]
    return result


class TestTransitionLabel:
    def test_satisfaction(self):
        label = TransitionLabel(frozenset({"p"}), frozenset({"q"}))
        assert label.satisfied_by({"p"})
        assert not label.satisfied_by({"p", "q"})
        assert not label.satisfied_by(set())

    def test_consistency(self):
        assert TransitionLabel(frozenset({"p"}), frozenset({"q"})).is_consistent()
        assert not TransitionLabel(frozenset({"p"}), frozenset({"p"})).is_consistent()

    def test_str(self):
        assert str(TransitionLabel()) == "true"
        assert "!q" in str(TransitionLabel(frozenset({"p"}), frozenset({"q"})))


class TestBasicAutomata:
    def test_globally_p_accepts_constant_p(self):
        automaton = ltl_to_buchi(parse_ltl("G p"))
        assert automaton.accepts_lasso([], [{"p"}])

    def test_globally_p_rejects_missing_p(self):
        automaton = ltl_to_buchi(parse_ltl("G p"))
        assert not automaton.accepts_lasso([{"p"}], [set()])

    def test_finally_p(self):
        automaton = ltl_to_buchi(parse_ltl("F p"))
        assert automaton.accepts_lasso([set(), {"p"}], [set()])
        assert not automaton.accepts_lasso([set()], [set()])

    def test_until(self):
        automaton = ltl_to_buchi(parse_ltl("p U q"))
        assert automaton.accepts_lasso([{"p"}, {"p"}, {"q"}], [set()])
        assert not automaton.accepts_lasso([{"p"}], [{"p"}])

    def test_next(self):
        automaton = ltl_to_buchi(parse_ltl("X p"))
        assert automaton.accepts_lasso([set(), {"p"}], [set()])
        assert not automaton.accepts_lasso([{"p"}, set()], [set()])

    def test_false_accepts_nothing(self):
        automaton = ltl_to_buchi(LFalse())
        assert not automaton.accepts_lasso([], [set()])
        assert not automaton.accepts_lasso([], [{"p"}])

    def test_true_accepts_everything(self):
        automaton = ltl_to_buchi(LTrue())
        assert automaton.accepts_lasso([], [set()])

    def test_response_property(self):
        automaton = ltl_to_buchi(parse_ltl("G (p -> F q)"))
        assert automaton.accepts_lasso([], [{"p"}, {"q"}])
        assert not automaton.accepts_lasso([], [{"p"}])

    def test_extra_propositions_recorded(self):
        automaton = ltl_to_buchi(parse_ltl("G p"), extra_propositions=["svc"])
        assert "svc" in automaton.propositions

    def test_lasso_needs_nonempty_cycle(self):
        automaton = ltl_to_buchi(parse_ltl("G p"))
        with pytest.raises(ValueError):
            automaton.accepts_lasso([{"p"}], [])


def _random_formula(rng: random.Random, depth: int) -> Formula:
    if depth == 0:
        choice = rng.random()
        if choice < 0.4:
            return Prop(rng.choice(PROPS))
        if choice < 0.5:
            return LTrue()
        if choice < 0.6:
            return LFalse()
        return Not(Prop(rng.choice(PROPS)))
    operator = rng.choice(["and", "or", "not", "next", "until", "release", "globally", "finally", "implies"])
    if operator in ("and", "or", "until", "release", "implies"):
        left = _random_formula(rng, depth - 1)
        right = _random_formula(rng, depth - 1)
        return {"and": And, "or": Or, "until": Until, "release": Release, "implies": Implies}[operator](left, right)
    operand = _random_formula(rng, depth - 1)
    return {"not": Not, "next": Next, "globally": Globally, "finally": Finally}[operator](operand)


def _random_word(rng: random.Random):
    prefix = [set(p for p in PROPS if rng.random() < 0.5) for _ in range(rng.randrange(0, 4))]
    cycle = [set(p for p in PROPS if rng.random() < 0.5) for _ in range(rng.randrange(1, 4))]
    return prefix, cycle


class TestDifferentialAgainstSemantics:
    @pytest.mark.parametrize("seed", range(60))
    def test_buchi_acceptance_matches_direct_evaluation(self, seed):
        rng = random.Random(seed)
        formula = _random_formula(rng, rng.randrange(1, 4))
        automaton = ltl_to_buchi(formula)
        for word_seed in range(5):
            word_rng = random.Random(1000 * seed + word_seed)
            prefix, cycle = _random_word(word_rng)
            expected = evaluate_lasso(formula, prefix, cycle)
            actual = automaton.accepts_lasso(prefix, cycle)
            assert actual == expected, (
                f"formula {formula} on prefix={prefix} cycle={cycle}: "
                f"automaton={actual}, semantics={expected}"
            )

    @pytest.mark.parametrize("text", [
        "G p", "F p", "p U q", "G (p -> F q)", "G F p", "F G p",
        "(G F p) -> (G F q)", "G (p | G (!p))", "((!p) U q)",
        "G (p -> (q | X q | X X q))",
    ])
    def test_table4_templates_on_sample_words(self, text):
        formula = parse_ltl(text)
        automaton = ltl_to_buchi(formula)
        rng = random.Random(hash(text) % 10_000)
        for _ in range(8):
            prefix, cycle = _random_word(rng)
            assert automaton.accepts_lasso(prefix, cycle) == evaluate_lasso(formula, prefix, cycle)


class TestEvaluators:
    def test_finite_trace_stutter_semantics(self):
        formula = parse_ltl("F p")
        assert evaluate_finite_trace(formula, [set(), {"p"}])
        assert not evaluate_finite_trace(formula, [set(), set()])

    def test_finite_trace_globally(self):
        formula = parse_ltl("G p")
        assert evaluate_finite_trace(formula, [{"p"}, {"p"}])
        assert not evaluate_finite_trace(formula, [{"p"}, set()])

    def test_finite_trace_next_stutters_at_end(self):
        formula = parse_ltl("X p")
        assert evaluate_finite_trace(formula, [{"p"}])

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            evaluate_finite_trace(parse_ltl("G p"), [])

    def test_lasso_requires_cycle(self):
        with pytest.raises(ValueError):
            evaluate_lasso(parse_ltl("G p"), [{"p"}], [])

    @given(st.lists(st.sets(st.sampled_from(PROPS)), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_globally_equals_all_positions(self, trace):
        formula = parse_ltl("G p")
        assert evaluate_finite_trace(formula, trace) == all("p" in letter for letter in trace)

    @given(st.lists(st.sets(st.sampled_from(PROPS)), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_finally_equals_some_position(self, trace):
        formula = parse_ltl("F p")
        assert evaluate_finite_trace(formula, trace) == any("p" in letter for letter in trace)
