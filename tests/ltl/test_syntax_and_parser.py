"""Unit tests for LTL syntax, NNF conversion and the parser."""

import pytest

from repro.ltl.parser import LTLParseError, parse_ltl
from repro.ltl.syntax import (
    And,
    Finally,
    Globally,
    Implies,
    LFalse,
    LTrue,
    Next,
    Not,
    Or,
    Prop,
    Release,
    Until,
    F,
    G,
    U,
    X,
)


class TestSyntax:
    def test_propositions_collects_names(self):
        formula = G(Prop("p") >> F(Prop("q")))
        assert formula.propositions() == {"p", "q"}

    def test_operator_overloads(self):
        formula = (Prop("p") & Prop("q")) | ~Prop("r")
        assert isinstance(formula, Or)
        assert formula.propositions() == {"p", "q", "r"}

    def test_nnf_globally(self):
        assert G(Prop("p")).nnf() == Release(LFalse(), Prop("p"))

    def test_nnf_finally(self):
        assert F(Prop("p")).nnf() == Until(LTrue(), Prop("p"))

    def test_nnf_negated_until_is_release(self):
        assert Not(U(Prop("p"), Prop("q"))).nnf() == Release(Not(Prop("p")), Not(Prop("q")))

    def test_nnf_negated_next(self):
        assert Not(X(Prop("p"))).nnf() == Next(Not(Prop("p")))

    def test_nnf_implication(self):
        assert Implies(Prop("p"), Prop("q")).nnf() == Or(Not(Prop("p")), Prop("q"))

    def test_negated_is_nnf_of_negation(self):
        formula = G(Prop("p"))
        assert formula.negated() == Until(LTrue(), Not(Prop("p")))

    def test_double_negation_eliminated(self):
        assert Not(Not(Prop("p"))).nnf() == Prop("p")

    def test_subformulas_deduplicated(self):
        formula = And(Prop("p"), Prop("p"))
        assert len(formula.subformulas()) == 2  # the conjunction and one proposition

    def test_str_round_trip_through_parser(self):
        formula = G(Implies(Prop("p"), F(Prop("q"))))
        assert parse_ltl(str(formula)) == formula


class TestParser:
    def test_simple_proposition(self):
        assert parse_ltl("p") == Prop("p")

    def test_constants(self):
        assert parse_ltl("true") == LTrue()
        assert parse_ltl("false") == LFalse()

    def test_unary_operators(self):
        assert parse_ltl("G p") == Globally(Prop("p"))
        assert parse_ltl("F p") == Finally(Prop("p"))
        assert parse_ltl("X p") == Next(Prop("p"))
        assert parse_ltl("! p") == Not(Prop("p"))

    def test_precedence_and_over_or(self):
        assert parse_ltl("p & q | r") == Or(And(Prop("p"), Prop("q")), Prop("r"))

    def test_until_binds_looser_than_or(self):
        assert parse_ltl("p | q U r") == Until(Or(Prop("p"), Prop("q")), Prop("r"))

    def test_until_right_associative(self):
        assert parse_ltl("p U q U r") == Until(Prop("p"), Until(Prop("q"), Prop("r")))

    def test_release(self):
        assert parse_ltl("p R q") == Release(Prop("p"), Prop("q"))

    def test_implication(self):
        assert parse_ltl("p -> q") == Implies(Prop("p"), Prop("q"))

    def test_biconditional_expands(self):
        formula = parse_ltl("p <-> q")
        assert formula == And(Implies(Prop("p"), Prop("q")), Implies(Prop("q"), Prop("p")))

    def test_parentheses(self):
        assert parse_ltl("G (p -> F q)") == Globally(Implies(Prop("p"), Finally(Prop("q"))))

    def test_identifiers_with_underscores_and_dots(self):
        assert parse_ltl("open_ShipItem & x.status") == And(
            Prop("open_ShipItem"), Prop("x.status")
        )

    def test_nested_temporal(self):
        formula = parse_ltl("G (phi -> (psi | X psi | X X psi))")
        assert formula.propositions() == {"phi", "psi"}

    def test_unbalanced_parenthesis_rejected(self):
        with pytest.raises(LTLParseError):
            parse_ltl("(p & q")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(LTLParseError):
            parse_ltl("p q")

    def test_empty_input_rejected(self):
        with pytest.raises(LTLParseError):
            parse_ltl("")

    def test_invalid_character_rejected(self):
        with pytest.raises(LTLParseError):
            parse_ltl("p # q")
