"""Tests for the benchmark substrate: workflows, properties, metrics, runner."""

import pytest

from repro import Verifier, VerifierOptions
from repro.benchmark.cyclomatic import cyclomatic_complexity
from repro.benchmark.properties import (
    LTL_TEMPLATES,
    candidate_conditions,
    generate_properties,
    property_from_template,
)
from repro.benchmark.realworld import (
    REAL_WORKFLOW_FACTORIES,
    order_fulfillment,
    order_fulfillment_buggy,
    real_workflows,
)
from repro.benchmark.runner import BenchmarkRunner, WorkflowSuite, trimmed_mean
from repro.benchmark.synthetic import SyntheticConfig, generate_synthetic_workflow, synthetic_workflows
from repro.has.conditions import Const, Eq, Var
from repro.ltl.ltlfo import LTLFOProperty
from repro.ltl.parser import parse_ltl


class TestRealWorkflows:
    def test_every_factory_builds_a_valid_system(self):
        for name, factory in REAL_WORKFLOW_FACTORIES.items():
            system = factory()
            stats = system.statistics()
            assert stats["tasks"] >= 1, name
            assert stats["services"] >= 3, name

    def test_suite_statistics_resemble_table1(self):
        suite = WorkflowSuite("real", real_workflows())
        stats = suite.statistics()
        assert stats["size"] >= 10
        assert 1 <= stats["relations"] <= 6
        assert 1 <= stats["tasks"] <= 6
        assert 5 <= stats["variables"] <= 30
        assert 5 <= stats["services"] <= 25

    def test_cyclomatic_complexity_within_recommended_range(self):
        for system in real_workflows():
            assert 1 <= cyclomatic_complexity(system) <= 20

    def test_order_fulfillment_guard_bug_detected(self):
        """The Section 2.1 scenario: the correct variant satisfies the guard
        property, the buggy one (in-stock check moved inside ShipItem) violates it."""
        ltl_property = LTLFOProperty(
            "ProcessOrders",
            parse_ltl("G (open_ShipItem -> in_stock)"),
            conditions={"in_stock": Eq(Var("instock"), Const("Yes"))},
            name="ship-only-in-stock",
        )
        options = VerifierOptions(max_states=50_000, timeout_seconds=60)
        assert Verifier(order_fulfillment(), options).verify(ltl_property).satisfied
        assert Verifier(order_fulfillment_buggy(), options).verify(ltl_property).violated


class TestSyntheticGenerator:
    def test_deterministic_for_a_seed(self):
        config = SyntheticConfig(relations=3, tasks=3, variables_per_task=6, services_per_task=5, seed=11)
        first = generate_synthetic_workflow(config)
        second = generate_synthetic_workflow(config)
        assert first.statistics() == second.statistics()
        assert [s.name for s in first.all_internal_services()] == [
            s.name for s in second.all_internal_services()
        ]

    def test_size_parameters_respected(self):
        config = SyntheticConfig(relations=4, tasks=3, variables_per_task=10, services_per_task=7, seed=2)
        system = generate_synthetic_workflow(config)
        stats = system.statistics()
        assert stats["relations"] == 4
        assert stats["tasks"] == 3
        assert all(len(system.internal_services(t)) == 7 for t in system.task_names)

    def test_suite_scales_in_size(self):
        workflows = synthetic_workflows(
            count=3,
            base_config=SyntheticConfig(relations=3, tasks=2, variables_per_task=8, services_per_task=8),
            seed=5,
            scale_range=(0.4, 1.0),
        )
        sizes = [w.statistics()["services"] for w in workflows]
        assert sizes[0] < sizes[-1]

    def test_generated_workflows_are_verifiable(self):
        config = SyntheticConfig(relations=2, tasks=2, variables_per_task=5, services_per_task=4, seed=19)
        system = generate_synthetic_workflow(config)
        verifier = Verifier(system, VerifierOptions(max_states=3_000, timeout_seconds=15))
        result = verifier.verify(LTLFOProperty(system.root, parse_ltl("false"), name="false"))
        assert not result.unknown or result.stats.failed


class TestPropertyTemplates:
    def test_twelve_templates_matching_table4(self):
        assert len(LTL_TEMPLATES) == 12
        categories = {t.category for t in LTL_TEMPLATES}
        assert categories == {"baseline", "safety", "liveness", "fairness"}
        assert sum(1 for t in LTL_TEMPLATES if t.category == "safety") == 5
        assert sum(1 for t in LTL_TEMPLATES if t.category == "liveness") == 2
        assert sum(1 for t in LTL_TEMPLATES if t.category == "fairness") == 4

    def test_candidate_conditions_only_use_task_variables(self, tiny_system):
        task_variables = set(tiny_system.task("Main").variable_names)
        for condition in candidate_conditions(tiny_system):
            assert condition.variables() <= task_variables

    def test_generate_properties_one_per_template(self, tiny_system):
        properties = generate_properties(tiny_system, seed=4)
        assert len(properties) == len(LTL_TEMPLATES)
        for ltl_property in properties:
            assert ltl_property.task == "Main"

    def test_generation_is_deterministic(self, tiny_system):
        first = generate_properties(tiny_system, seed=9)
        second = generate_properties(tiny_system, seed=9)
        assert [str(p.conditions) for p in first] == [str(p.conditions) for p in second]

    def test_properties_are_verifiable(self, tiny_system):
        verifier = Verifier(tiny_system, VerifierOptions(max_states=10_000, timeout_seconds=20))
        for ltl_property in generate_properties(tiny_system, seed=1):
            result = verifier.verify(ltl_property)
            assert not result.unknown


class TestRunnerAggregation:
    def test_trimmed_mean(self):
        values = [1.0] * 18 + [1000.0, 0.001]
        assert trimmed_mean(values, 0.05) == pytest.approx(1.0)
        assert trimmed_mean([], 0.05) == 0.0

    def test_run_workflow_and_tables(self, tiny_system):
        runner = BenchmarkRunner(timeout_seconds=15, max_states=5_000, templates=LTL_TEMPLATES[:3])
        records = runner.run_workflow(tiny_system, "VERIFAS", VerifierOptions())
        assert len(records) == 3
        table2 = BenchmarkRunner.table2(records)
        assert table2["VERIFAS"]["runs"] == 3
        table4 = BenchmarkRunner.table4(records)
        assert set(table4) == {"false", "always", "until"}
        series = BenchmarkRunner.figure9(records)
        assert len(series) == 1 and series[0][2] == 3

    def test_speedup_and_overhead_aggregation(self, tiny_system):
        runner = BenchmarkRunner(timeout_seconds=15, max_states=5_000, templates=LTL_TEMPLATES[:2])
        fast = runner.run_workflow(tiny_system, "fast", VerifierOptions())
        slow = runner.run_workflow(tiny_system, "slow", VerifierOptions(state_pruning=False))
        speedups = BenchmarkRunner.table3(fast, slow)
        assert speedups["runs"] == 2
        assert speedups["mean"] > 0
        overhead = BenchmarkRunner.overhead(fast, slow)
        assert isinstance(overhead, float)

    def test_spin_baseline_configuration(self, tiny_system):
        runner = BenchmarkRunner(timeout_seconds=15, max_states=20_000, templates=LTL_TEMPLATES[:2])
        suite = WorkflowSuite("tiny", [tiny_system])
        records = runner.run_suite(suite, {"Spin-Opt": None, "VERIFAS": VerifierOptions()})
        verifiers = {record.verifier for record in records}
        assert verifiers == {"Spin-Opt", "VERIFAS"}
