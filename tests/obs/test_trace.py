"""Unit tests of the tracing primitives: W3C context, spans, tracer, scope."""

from __future__ import annotations

import time

import pytest

from repro.obs import (
    Span,
    TraceContext,
    TraceScope,
    Tracer,
    format_traceparent,
    new_span_id,
    new_trace_id,
    parse_traceparent,
)


class TestTraceparent:
    def test_round_trip(self):
        trace_id, span_id = new_trace_id(), new_span_id()
        header = format_traceparent(trace_id, span_id)
        context = parse_traceparent(header)
        assert context == TraceContext(trace_id=trace_id, span_id=span_id)

    def test_ids_have_w3c_lengths(self):
        assert len(new_trace_id()) == 32
        assert len(new_span_id()) == 16
        int(new_trace_id(), 16)  # hex

    def test_missing_header_is_none(self):
        assert parse_traceparent(None) is None
        assert parse_traceparent("") is None

    @pytest.mark.parametrize("header", [
        "garbage",
        "00-short-span-01",
        "00-" + "g" * 32 + "-" + "a" * 16 + "-01",     # non-hex trace id
        "00-" + "a" * 32 + "-" + "b" * 15 + "-01",     # span id too short
        "00-" + "a" * 32 + "-" + "b" * 16,             # missing flags
        "0-" + "a" * 32 + "-" + "b" * 16 + "-01",      # bad version field
        "00_" + "a" * 32 + "_" + "b" * 16 + "_01",     # wrong separators
    ])
    def test_malformed_header_is_none_never_raises(self, header):
        assert parse_traceparent(header) is None

    def test_all_zero_ids_are_invalid_per_spec(self):
        assert parse_traceparent("00-" + "0" * 32 + "-" + "b" * 16 + "-01") is None
        assert parse_traceparent("00-" + "a" * 32 + "-" + "0" * 16 + "-01") is None

    def test_case_and_whitespace_are_normalised(self):
        header = "  00-" + "A" * 32 + "-" + "B" * 16 + "-01  "
        context = parse_traceparent(header)
        assert context is not None
        assert context.trace_id == "a" * 32

    def test_context_renders_its_own_traceparent(self):
        context = TraceContext("a" * 32, "b" * 16)
        assert parse_traceparent(context.traceparent()) == context


class TestSpan:
    def test_lifecycle_measures_duration(self):
        span = Span(trace_id="t" * 32, span_id="s" * 16, name="work").start()
        assert span.duration is None  # open
        time.sleep(0.01)
        span.end()
        assert span.duration is not None and span.duration >= 0.005

    def test_end_is_idempotent(self):
        span = Span(trace_id="t" * 32, span_id="s" * 16, name="work").start()
        span.end()
        first = span.duration
        time.sleep(0.005)
        span.end()
        assert span.duration == first

    def test_set_error_records_status_and_reason(self):
        span = Span(trace_id="t" * 32, span_id="s" * 16, name="work")
        span.set_error("boom", reason="cancelled")
        assert span.status == "error"
        assert span.attrs["error"] == "boom"
        assert span.attrs["reason"] == "cancelled"

    def test_as_dict_is_json_shaped(self):
        span = Span(trace_id="t" * 32, span_id="s" * 16, name="work",
                    job_id="j1").start()
        span.set_attr("states", 7)
        span.end()
        data = span.as_dict()
        assert data["name"] == "work"
        assert data["job_id"] == "j1"
        assert data["attrs"] == {"states": 7}
        assert data["duration"] == span.duration


class TestTracer:
    def test_disabled_tracer_hands_out_one_shared_noop(self):
        tracer = Tracer(enabled=False, exporter=lambda s: pytest.fail("exported"))
        a = tracer.start_span("one")
        b = tracer.start_span("two")
        assert a is b  # the shared singleton: no allocation when off
        a.set_attr("k", "v")
        a.set_error("x")
        assert a.context() is None
        tracer.finish(a)  # exporter never called (would fail the test)

    def test_enabled_tracer_exports_on_finish(self):
        exported = []
        tracer = Tracer(enabled=True, exporter=exported.append)
        span = tracer.start_span("op", job_id="j1")
        assert exported == []  # only finished spans export
        tracer.finish(span)
        assert [s.name for s in exported] == ["op"]
        assert exported[0].duration is not None

    def test_parent_wins_over_trace_id(self):
        tracer = Tracer(enabled=True)
        parent = TraceContext("a" * 32, "b" * 16)
        span = tracer.start_span("child", parent=parent, trace_id="c" * 32)
        assert span.trace_id == "a" * 32
        assert span.parent_id == "b" * 16

    def test_trace_id_joins_without_parent(self):
        tracer = Tracer(enabled=True)
        span = tracer.start_span("root", trace_id="c" * 32)
        assert span.trace_id == "c" * 32
        assert span.parent_id is None

    def test_exporter_exceptions_are_swallowed(self):
        def explode(_span):
            raise RuntimeError("exporter down")
        exported = []
        tracer = Tracer(enabled=True, exporter=explode)
        tracer.add_exporter(exported.append)
        tracer.finish(tracer.start_span("op"))
        assert len(exported) == 1  # later exporters still run

    def test_span_context_manager_marks_exceptions(self):
        exported = []
        tracer = Tracer(enabled=True, exporter=exported.append)
        with pytest.raises(ValueError):
            with tracer.span("op"):
                raise ValueError("bad input")
        assert exported[0].status == "error"
        assert "ValueError" in exported[0].attrs["error"]

    def test_record_span_is_retroactive(self):
        exported = []
        tracer = Tracer(enabled=True, exporter=exported.append)
        tracer.record_span("queue.wait", trace_id="a" * 32, parent_id="b" * 16,
                           start_time=123.0, duration=0.5, job_id="j1")
        span = exported[0]
        assert (span.start_time, span.duration) == (123.0, 0.5)
        assert span.parent_id == "b" * 16

    def test_record_span_clamps_negative_durations(self):
        exported = []
        tracer = Tracer(enabled=True, exporter=exported.append)
        tracer.record_span("queue.wait", trace_id="a" * 32, parent_id=None,
                           start_time=123.0, duration=-0.25)
        assert exported[0].duration == 0.0

    def test_record_span_on_disabled_tracer_is_a_noop(self):
        tracer = Tracer(enabled=False, exporter=lambda s: pytest.fail("exported"))
        tracer.record_span("queue.wait", trace_id="a" * 32, parent_id=None,
                           start_time=0.0, duration=1.0)


class TestTraceScope:
    def test_nesting_tracks_the_current_parent(self):
        exported = []
        tracer = Tracer(enabled=True, exporter=exported.append)
        root = TraceContext("a" * 32, "b" * 16)
        scope = TraceScope(tracer, parent=root, job_id="j1")
        with scope.span("outer") as outer:
            with scope.span("inner") as inner:
                pass
            with scope.span("sibling") as sibling:
                pass
        assert outer.parent_id == "b" * 16
        assert inner.parent_id == outer.span_id
        assert sibling.parent_id == outer.span_id  # restored after inner
        assert {s.trace_id for s in exported} == {"a" * 32}
        assert all(s.job_id == "j1" for s in exported)

    def test_scope_over_disabled_tracer_keeps_nesting_harmless(self):
        scope = TraceScope(Tracer(enabled=False))
        with scope.span("outer") as outer:
            with scope.span("inner") as inner:
                inner.set_attr("k", "v")
        assert outer.context() is None

    def test_exception_inside_scope_span_sets_error(self):
        exported = []
        scope = TraceScope(Tracer(enabled=True, exporter=exported.append))
        with pytest.raises(RuntimeError):
            with scope.span("outer"):
                raise RuntimeError("search blew up")
        assert exported[0].status == "error"
