"""Unit tests of the span-tree builder and the ASCII waterfall renderer."""

from __future__ import annotations

from repro.obs import build_tree, render_trace


def _span(name, span_id, parent_id=None, start=0.0, duration=0.1, **extra):
    span = {
        "trace_id": "t" * 32,
        "span_id": span_id,
        "parent_id": parent_id,
        "job_id": "j1",
        "name": name,
        "start_time": start,
        "duration": duration,
        "status": "ok",
        "attrs": {},
    }
    span.update(extra)
    return span


class TestBuildTree:
    def test_children_nest_under_their_parent(self):
        spans = [
            _span("root", "r" * 16),
            _span("child", "c" * 16, parent_id="r" * 16, start=0.01),
            _span("grandchild", "g" * 16, parent_id="c" * 16, start=0.02),
        ]
        roots = build_tree(spans)
        assert len(roots) == 1
        assert roots[0]["span"]["name"] == "root"
        child = roots[0]["children"][0]
        assert child["span"]["name"] == "child"
        assert child["children"][0]["span"]["name"] == "grandchild"

    def test_unknown_parent_becomes_remote_placeholder(self):
        # The client's own span never reaches the server, so the server-side
        # root points at a parent_id with no recorded span.
        spans = [_span("http.submit", "s" * 16, parent_id="f" * 16)]
        roots = build_tree(spans)
        assert len(roots) == 1
        placeholder = roots[0]["span"]
        assert placeholder["name"] == "client (remote)"
        assert placeholder["attrs"] == {"remote": True}
        assert roots[0]["children"][0]["span"]["name"] == "http.submit"

    def test_siblings_under_one_unknown_parent_share_a_placeholder(self):
        spans = [
            _span("a", "a" * 16, parent_id="f" * 16, start=0.0, duration=0.2),
            _span("b", "b" * 16, parent_id="f" * 16, start=0.3, duration=0.1),
        ]
        roots = build_tree(spans)
        assert len(roots) == 1
        names = [c["span"]["name"] for c in roots[0]["children"]]
        assert names == ["a", "b"]
        # The placeholder bar stretches over its children.
        assert roots[0]["span"]["start_time"] == 0.0
        assert abs(roots[0]["span"]["duration"] - 0.4) < 1e-9

    def test_children_are_sorted_by_start_time(self):
        spans = [
            _span("root", "r" * 16),
            _span("late", "b" * 16, parent_id="r" * 16, start=0.5),
            _span("early", "a" * 16, parent_id="r" * 16, start=0.1),
        ]
        roots = build_tree(spans)
        assert [c["span"]["name"] for c in roots[0]["children"]] == ["early", "late"]

    def test_empty_input_is_an_empty_forest(self):
        assert build_tree([]) == []


class TestRenderTrace:
    def _view(self, spans, status="done"):
        return {"id": "job-1", "status": status, "trace_id": "t" * 32,
                "spans": spans, "tree": build_tree(spans)}

    def test_no_spans_prints_a_hint(self):
        text = render_trace(self._view([]))
        assert "spans=0" in text
        assert "no spans recorded" in text

    def test_waterfall_indents_by_depth_and_shows_durations(self):
        spans = [
            _span("worker.execute", "r" * 16, start=0.0, duration=1.0),
            _span("verify.search", "c" * 16, parent_id="r" * 16,
                  start=0.2, duration=0.5),
        ]
        text = render_trace(self._view(spans))
        lines = text.splitlines()
        assert any(line.startswith("worker.execute") for line in lines)
        assert any(line.startswith("  verify.search") for line in lines)
        assert "1.00s" in text and "500.0ms" in text

    def test_error_spans_carry_a_failure_note(self):
        spans = [_span("worker.execute", "r" * 16, status="error",
                       attrs={"error": "worker process died mid-job",
                              "reason": "worker-crashed"})]
        text = render_trace(self._view(spans, status="error"))
        assert "worker.execute !" in text
        assert "status=error: worker-crashed" in text

    def test_phase_attrs_render_a_breakdown(self):
        spans = [_span(
            "verify.search", "r" * 16, duration=1.0,
            attrs={"phases": {
                "successor-generation": {"seconds": 0.6, "count": 42},
                "coverage-check": {"seconds": 0.1, "count": 42},
            }},
        )]
        text = render_trace(self._view(spans))
        assert "· successor-generation" in text
        assert "(60%, 42×)" in text
        assert "· coverage-check" in text
        # Dominant phase listed first.
        assert text.index("successor-generation") < text.index("coverage-check")

    def test_width_bounds_the_bar_column(self):
        spans = [_span("worker.execute", "r" * 16, duration=1.0)]
        narrow = render_trace(self._view(spans), width=60)
        wide = render_trace(self._view(spans), width=160)
        bar = lambda text: max(line.count("█") for line in text.splitlines())
        assert bar(wide) > bar(narrow)
