"""End-to-end tests of the submit-path static analysis gate.

A spec with error-severity diagnostics must be rejected with HTTP 422 and a
machine-readable diagnostics body *before* any job row is written or worker
claimed; warning-severity diagnostics must ride along on the 202 response,
the persisted job row, and the job view.  The ``specs_rejected`` counters
(total and per-code) account for every rejection.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.client import SpecRejectedError, VerifasClient
from repro.has.conditions import Const, Eq, Neq, Var
from repro.ltl import LTLFOProperty, parse_ltl
from repro.spec import dump_property, dump_system

pytest.importorskip("repro.server")
from repro.server import VerificationServer  # noqa: E402

OPTIONS = {"timeout_seconds": 60}


@pytest.fixture
def server(tmp_path, worker_model):
    server = VerificationServer(
        store_path=tmp_path / "jobs.db", port=0, workers=2,
        sweep_interval=0.1, worker_model=worker_model,
    )
    server.start()
    yield server
    server.stop()


@pytest.fixture
def client(server):
    return VerifasClient(server.url, poll_initial=0.02, poll_max=0.2)


def _good_property():
    return LTLFOProperty(
        "Main", parse_ltl("G ns"),
        {"ns": Neq(Var("status"), Const("shipped"))}, name="never-shipped",
    )


def _bad_properties():
    """One unknown-task property (VA102), one unknown-relation (VA103)."""
    from repro.has.conditions import RelationAtom

    return [
        LTLFOProperty("Nope", parse_ltl("G p"), {"p": Eq(Var("x"), Const("a"))},
                      name="lost"),
        LTLFOProperty("Main", parse_ltl("G p"),
                      {"p": RelationAtom("GHOSTS", (Var("status"),))},
                      name="haunted"),
    ]


def _trivial_property():
    return LTLFOProperty("Main", parse_ltl("true"), {}, name="trivial")


class TestSubmitRejection:
    def test_422_with_diagnostics_and_no_job_rows(self, server, client, tiny_system):
        with pytest.raises(SpecRejectedError) as excinfo:
            client.submit(
                dump_system(tiny_system),
                [dump_property(p) for p in _bad_properties()],
                options=OPTIONS,
            )
        error = excinfo.value
        assert error.status == 422
        codes = sorted(d["code"] for d in error.diagnostics)
        assert codes == ["VA102", "VA103"]
        assert all(d["severity"] == "error" for d in error.diagnostics)
        assert "static analysis" in str(error)

        # Nothing was persisted and no worker ever claimed anything.
        with sqlite3.connect(server.store.path) as connection:
            count = connection.execute("SELECT COUNT(*) FROM jobs").fetchone()[0]
        assert count == 0

    def test_rejection_counters(self, server, client, tiny_system):
        before = client.metrics()["counters"]
        assert before.get("specs_rejected") == 0
        with pytest.raises(SpecRejectedError):
            client.submit(
                dump_system(tiny_system),
                [dump_property(p) for p in _bad_properties()],
                options=OPTIONS,
            )
        counters = client.metrics()["counters"]
        assert counters["specs_rejected"] == 1
        assert counters["specs_rejected_va102"] == 1
        assert counters["specs_rejected_va103"] == 1

    def test_mixed_batch_rejected_atomically(self, server, client, tiny_system):
        """One bad property poisons the whole submit: no partial batches."""
        with pytest.raises(SpecRejectedError):
            client.submit(
                dump_system(tiny_system),
                [dump_property(_good_property())] + [dump_property(p) for p in _bad_properties()],
                options=OPTIONS,
            )
        with sqlite3.connect(server.store.path) as connection:
            count = connection.execute("SELECT COUNT(*) FROM jobs").fetchone()[0]
        assert count == 0


class TestWarningsPersistence:
    def test_warnings_ride_the_202_and_the_job_view(self, client, tiny_system):
        handles = client.submit(
            dump_system(tiny_system),
            [dump_property(_trivial_property()), dump_property(_good_property())],
            options=OPTIONS,
        )
        views = client.wait_all([h.id for h in handles], deadline_seconds=60)

        trivial_view = views[handles[0].id]
        warning_codes = [d["code"] for d in trivial_view.get("warnings", [])]
        assert "VA402" in warning_codes
        for diagnostic in trivial_view["warnings"]:
            assert diagnostic["severity"] == "warning"

        # The clean property carries no trivial-property warning of its own.
        good_view = views[handles[1].id]
        assert "VA402" not in [d["code"] for d in good_view.get("warnings", [])]

        # Warnings never block: both jobs verified to completion.
        assert trivial_view["result"]["outcome"] == "satisfied"
        assert good_view["result"]["outcome"] == "violated"

    def test_clean_spec_has_no_warnings_key(self, client):
        from repro.has.builder import ArtifactSystemBuilder
        from repro.has.conditions import NULL
        from repro.has.schema import DatabaseSchema

        schema = DatabaseSchema.from_dict({"ITEMS": {"price": None}})
        builder = ArtifactSystemBuilder("clean", schema)
        task = builder.task("Main")
        task.id_variable("item", "ITEMS")
        task.variable("status")
        task.variable("other")
        task.internal_service(
            "copy", pre=Eq(Var("status"), NULL),
            post=Eq(Var("status"), Var("other")),
        )
        system = builder.build()
        ltl_property = LTLFOProperty(
            "Main", parse_ltl("G p"),
            {"p": Neq(Var("status"), Const("zzz"))}, name="clean",
        )
        [handle] = client.submit(
            dump_system(system), [dump_property(ltl_property)], options=OPTIONS
        )
        view = client.wait(handle.id, deadline_seconds=60)
        assert "warnings" not in view
