"""Tests of server metrics: nearest-rank percentiles, per-worker gauges,
monotonic uptime, and the Prometheus text rendering."""

from __future__ import annotations

import time

from repro.server import LatencyTracker, ServerMetrics, WorkerGauges
from repro.server.metrics import render_prometheus


class TestLatencyPercentiles:
    """Exact nearest-rank values (the smallest sample with >= f*n mass at
    or below it, i.e. ordered[ceil(f*n) - 1]), pinning the off-by-one that
    `int(f * n)` used to introduce."""

    def _filled(self, values):
        tracker = LatencyTracker()
        for value in values:
            tracker.observe(value)
        return tracker

    def test_p50_of_two_samples_is_the_lower_one(self):
        # The old `int(0.5 * 2) == 1` picked index 1 -> 2 (biased upward).
        assert self._filled([1.0, 2.0]).percentile(0.50) == 1.0

    def test_p50_of_an_even_window_is_the_lower_median(self):
        assert self._filled([1.0, 2.0, 3.0, 4.0]).percentile(0.50) == 2.0

    def test_p50_of_an_odd_window_is_the_median(self):
        assert self._filled([3.0, 1.0, 2.0]).percentile(0.50) == 2.0

    def test_single_sample_is_every_percentile(self):
        tracker = self._filled([5.0])
        assert tracker.percentile(0.50) == 5.0
        assert tracker.percentile(0.90) == 5.0
        assert tracker.percentile(0.99) == 5.0

    def test_p90_and_p99_of_ten_samples(self):
        # ordered = [1..10]: p90 -> ceil(9)-1 = index 8 -> 9; p99 -> index 9 -> 10.
        tracker = self._filled([float(n) for n in range(10, 0, -1)])
        assert tracker.percentile(0.90) == 9.0
        assert tracker.percentile(0.99) == 10.0

    def test_p100_is_the_maximum(self):
        assert self._filled([1.0, 2.0, 3.0]).percentile(1.0) == 3.0

    def test_p0_is_the_minimum(self):
        assert self._filled([1.0, 2.0, 3.0]).percentile(0.0) == 1.0

    def test_empty_window_has_no_percentiles(self):
        tracker = LatencyTracker()
        assert tracker.percentile(0.5) is None
        snapshot = tracker.snapshot()
        assert snapshot["count"] == 0 and snapshot["p50_seconds"] is None

    def test_snapshot_matches_percentile_readouts(self):
        tracker = self._filled([4.0, 1.0, 3.0, 2.0])
        snapshot = tracker.snapshot()
        assert snapshot["p50_seconds"] == tracker.percentile(0.50) == 2.0
        assert snapshot["p90_seconds"] == tracker.percentile(0.90) == 4.0
        assert snapshot["mean_seconds"] == 2.5

    def test_window_bounds_the_sample_count(self):
        tracker = LatencyTracker(window=4)
        for value in range(100):
            tracker.observe(float(value))
        # Only the last 4 observations (96..99) remain in the reservoir.
        assert tracker.percentile(0.0) == 96.0
        assert tracker.count == 100  # lifetime counter keeps the full tally


class TestWorkerGauges:
    def test_update_and_increment_round_trip(self):
        gauges = WorkerGauges()
        gauges.update("proc-0", state="busy", pid=123, current_job="abc")
        gauges.increment("proc-0", "jobs_completed")
        gauges.increment("proc-0", "jobs_completed")
        gauge = gauges.get("proc-0")
        assert gauge["state"] == "busy" and gauge["pid"] == 123
        assert gauge["jobs_completed"] == 2 and gauge["crashes"] == 0

    def test_snapshot_is_sorted_and_detached(self):
        gauges = WorkerGauges()
        gauges.update("proc-1", state="idle")
        gauges.update("proc-0", state="busy")
        snapshot = gauges.snapshot()
        assert [g["worker_id"] for g in snapshot] == ["proc-0", "proc-1"]
        snapshot[0]["state"] = "mutated"
        assert gauges.get("proc-0")["state"] == "busy"

    def test_server_metrics_carries_worker_gauges(self):
        metrics = ServerMetrics()
        metrics.worker_gauges.update("proc-0", state="idle")
        assert metrics.worker_gauges.snapshot()[0]["worker_id"] == "proc-0"
        assert metrics.counter("worker_crashes") == 0


class TestUptimeIsMonotonic:
    """Regression: uptime used to be ``time.time() - started_at``, which went
    negative (or jumped) whenever NTP stepped the wall clock."""

    def test_uptime_survives_a_backwards_wall_clock_step(self, monkeypatch):
        metrics = ServerMetrics()
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() - 3600.0)
        assert metrics.uptime_seconds() >= 0.0
        assert metrics.snapshot()["uptime_seconds"] >= 0.0

    def test_uptime_ignores_a_forwards_wall_clock_step(self, monkeypatch):
        metrics = ServerMetrics()
        real_time = time.time
        monkeypatch.setattr(time, "time", lambda: real_time() + 3600.0)
        # A step forward must not inflate uptime past real elapsed time.
        assert metrics.uptime_seconds() < 60.0

    def test_uptime_grows_with_the_monotonic_clock(self, monkeypatch):
        metrics = ServerMetrics()
        anchor = metrics._mono_started
        monkeypatch.setattr(time, "monotonic", lambda: anchor + 12.5)
        assert metrics.uptime_seconds() == 12.5

    def test_started_at_stays_a_wall_clock_stamp_for_display(self):
        metrics = ServerMetrics()
        assert abs(metrics.started_at - time.time()) < 60.0


class TestPrometheusRendering:
    def _view(self, **overrides):
        view = {
            "server_id": "s1",
            "uptime_seconds": 42.5,
            "counters": {"jobs_submitted": 3, "worker_crashes": 0},
            "job_latency": {
                "count": 4, "mean_seconds": 2.0,
                "p50_seconds": 1.5, "p90_seconds": 3.5, "p99_seconds": 4.0,
            },
            "queue": {"depth": 2, "running": 1,
                      "jobs": {"queued": 2, "running": 1, "done": 5}},
            "cache": {"entries": 7, "hit_rate": 0.25},
            "workers": {"count": 2, "pool": [
                {"worker_id": "a:proc-0", "state": "busy",
                 "jobs_completed": 9, "crashes": 1, "recycles": 0},
                {"worker_id": "a:proc-1", "state": "idle",
                 "jobs_completed": 2, "crashes": 0, "recycles": 1},
            ]},
        }
        view.update(overrides)
        return view

    def test_counters_become_suffixed_totals_with_help_and_type(self):
        text = render_prometheus(self._view())
        assert "# HELP repro_jobs_submitted_total Total jobs submitted." in text
        assert "# TYPE repro_jobs_submitted_total counter" in text
        assert "repro_jobs_submitted_total 3" in text
        assert text.endswith("repro_up 1\n")

    def test_latency_summary_has_quantiles_sum_and_count(self):
        text = render_prometheus(self._view())
        assert 'repro_job_latency_seconds{quantile="0.5"} 1.5' in text
        assert 'repro_job_latency_seconds{quantile="0.99"} 4.0' in text
        assert "repro_job_latency_seconds_sum 8.0" in text  # mean * count
        assert "repro_job_latency_seconds_count 4" in text

    def test_empty_latency_window_renders_nan_quantiles(self):
        text = render_prometheus(self._view(job_latency={
            "count": 0, "mean_seconds": None,
            "p50_seconds": None, "p90_seconds": None, "p99_seconds": None,
        }))
        assert 'repro_job_latency_seconds{quantile="0.5"} NaN' in text
        assert "repro_job_latency_seconds_count 0" in text

    def test_per_worker_gauges_are_labelled(self):
        text = render_prometheus(self._view())
        assert 'repro_worker_busy{worker_id="a:proc-0"} 1' in text
        assert 'repro_worker_busy{worker_id="a:proc-1"} 0' in text
        assert 'repro_worker_jobs_completed_total{worker_id="a:proc-0"} 9' in text
        assert 'repro_worker_crashes_total{worker_id="a:proc-0"} 1' in text
        assert 'repro_worker_recycles_total{worker_id="a:proc-1"} 1' in text

    def test_job_status_series_and_queue_gauges(self):
        text = render_prometheus(self._view())
        assert "repro_queue_depth 2" in text
        assert "repro_jobs_running 1" in text
        assert 'repro_jobs{status="done"} 5' in text

    def test_label_values_are_escaped(self):
        text = render_prometheus(self._view(server_id='we"ird\\id'))
        assert 'repro_server_info{server_id="we\\"ird\\\\id"} 1' in text

    def test_missing_sections_render_defaults_not_errors(self):
        text = render_prometheus({"counters": {}})
        assert 'repro_server_info{server_id=""} 1' in text
        assert "repro_workers 0" in text
        assert "repro_cache_hit_rate NaN" in text
        assert text.endswith("repro_up 1\n")
