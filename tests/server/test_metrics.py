"""Tests of server metrics: nearest-rank percentiles and per-worker gauges."""

from __future__ import annotations

from repro.server import LatencyTracker, ServerMetrics, WorkerGauges


class TestLatencyPercentiles:
    """Exact nearest-rank values (the smallest sample with >= f*n mass at
    or below it, i.e. ordered[ceil(f*n) - 1]), pinning the off-by-one that
    `int(f * n)` used to introduce."""

    def _filled(self, values):
        tracker = LatencyTracker()
        for value in values:
            tracker.observe(value)
        return tracker

    def test_p50_of_two_samples_is_the_lower_one(self):
        # The old `int(0.5 * 2) == 1` picked index 1 -> 2 (biased upward).
        assert self._filled([1.0, 2.0]).percentile(0.50) == 1.0

    def test_p50_of_an_even_window_is_the_lower_median(self):
        assert self._filled([1.0, 2.0, 3.0, 4.0]).percentile(0.50) == 2.0

    def test_p50_of_an_odd_window_is_the_median(self):
        assert self._filled([3.0, 1.0, 2.0]).percentile(0.50) == 2.0

    def test_single_sample_is_every_percentile(self):
        tracker = self._filled([5.0])
        assert tracker.percentile(0.50) == 5.0
        assert tracker.percentile(0.90) == 5.0
        assert tracker.percentile(0.99) == 5.0

    def test_p90_and_p99_of_ten_samples(self):
        # ordered = [1..10]: p90 -> ceil(9)-1 = index 8 -> 9; p99 -> index 9 -> 10.
        tracker = self._filled([float(n) for n in range(10, 0, -1)])
        assert tracker.percentile(0.90) == 9.0
        assert tracker.percentile(0.99) == 10.0

    def test_p100_is_the_maximum(self):
        assert self._filled([1.0, 2.0, 3.0]).percentile(1.0) == 3.0

    def test_p0_is_the_minimum(self):
        assert self._filled([1.0, 2.0, 3.0]).percentile(0.0) == 1.0

    def test_empty_window_has_no_percentiles(self):
        tracker = LatencyTracker()
        assert tracker.percentile(0.5) is None
        snapshot = tracker.snapshot()
        assert snapshot["count"] == 0 and snapshot["p50_seconds"] is None

    def test_snapshot_matches_percentile_readouts(self):
        tracker = self._filled([4.0, 1.0, 3.0, 2.0])
        snapshot = tracker.snapshot()
        assert snapshot["p50_seconds"] == tracker.percentile(0.50) == 2.0
        assert snapshot["p90_seconds"] == tracker.percentile(0.90) == 4.0
        assert snapshot["mean_seconds"] == 2.5

    def test_window_bounds_the_sample_count(self):
        tracker = LatencyTracker(window=4)
        for value in range(100):
            tracker.observe(float(value))
        # Only the last 4 observations (96..99) remain in the reservoir.
        assert tracker.percentile(0.0) == 96.0
        assert tracker.count == 100  # lifetime counter keeps the full tally


class TestWorkerGauges:
    def test_update_and_increment_round_trip(self):
        gauges = WorkerGauges()
        gauges.update("proc-0", state="busy", pid=123, current_job="abc")
        gauges.increment("proc-0", "jobs_completed")
        gauges.increment("proc-0", "jobs_completed")
        gauge = gauges.get("proc-0")
        assert gauge["state"] == "busy" and gauge["pid"] == 123
        assert gauge["jobs_completed"] == 2 and gauge["crashes"] == 0

    def test_snapshot_is_sorted_and_detached(self):
        gauges = WorkerGauges()
        gauges.update("proc-1", state="idle")
        gauges.update("proc-0", state="busy")
        snapshot = gauges.snapshot()
        assert [g["worker_id"] for g in snapshot] == ["proc-0", "proc-1"]
        snapshot[0]["state"] = "mutated"
        assert gauges.get("proc-0")["state"] == "busy"

    def test_server_metrics_carries_worker_gauges(self):
        metrics = ServerMetrics()
        metrics.worker_gauges.update("proc-0", state="idle")
        assert metrics.worker_gauges.snapshot()[0]["worker_id"] == "proc-0"
        assert metrics.counter("worker_crashes") == 0
