"""End-to-end tests of the multi-process worker pool (repro.server.workers).

Covers the PR acceptance criteria: jobs verify on real OS processes
(per-worker gauges expose the child pids), ``DELETE /v1/jobs/<id>``
terminates a hot process-worker search within its poll interval with
partial statistics, a SIGKILL'd worker's job is requeued through the
recovery path and completes on a respawned child (extending the PR 2
kill/restart suite), workers are recycled after ``max_jobs_per_worker``
jobs, a queued fingerprint-twin of a crashed job is re-claimed instead of
wedging, sandboxes without spawn degrade to thread workers, and -- behind
the ``slow`` marker -- a CPU-heavy batch speeds up >1.5x over threads on a
multi-core machine.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.client import VerifasClient
from repro.has.conditions import Const, Eq, Neq, Var
from repro.ltl import LTLFOProperty, parse_ltl
from repro.server import VerificationServer
from repro.spec import dump_property, dump_system

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_TEST_WORKER_MODEL") == "thread",
    reason="process worker model explicitly disabled for this run",
)


def _properties():
    return [
        LTLFOProperty("Main", parse_ltl("G ns"),
                      {"ns": Neq(Var("status"), Const("shipped"))}, name="never-shipped"),
        LTLFOProperty("Main", parse_ltl("F p"),
                      {"p": Eq(Var("status"), Const("picked"))}, name="eventually-picked"),
    ]


def _exploding_property(index: int = 0):
    """Satisfied on the exploding system: the search must exhaust the space.

    Distinct *index* values give distinct fingerprints (no dedup between
    batch entries)."""
    return LTLFOProperty(
        "Main",
        parse_ltl("G !(p & q)"),
        {"p": Eq(Var("v0"), Const("c0")), "q": Eq(Var("v0"), Const("c1"))},
        name=f"consistent-{index}",
    )


def _make_server(tmp_path, **kwargs) -> VerificationServer:
    kwargs.setdefault("store_path", tmp_path / "jobs.db")
    kwargs.setdefault("port", 0)
    kwargs.setdefault("worker_model", "process")
    kwargs.setdefault("sweep_interval", 0.1)
    kwargs.setdefault("progress_interval", 25)
    server = VerificationServer(**kwargs)
    server.start()
    if server.worker_model != "process":  # pragma: no cover - sandbox guard
        server.stop()
        pytest.skip(f"no process support here: {server.worker_fallback_error}")
    return server


def _wait_until(predicate, deadline_seconds: float = 30.0, message: str = "condition"):
    deadline = time.monotonic() + deadline_seconds
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {message}"
        time.sleep(0.02)


def _wait_for_progress(client: VerifasClient, job_id: str) -> None:
    """Block until the job is mid-search (running + at least one heartbeat)."""
    _wait_until(
        lambda: client.job(job_id)["status"] == "running",
        message="job to start running",
    )
    _wait_until(
        lambda: any(
            e["kind"] == "progress" for e in client.events(job_id)["events"]
        ),
        message="search progress",
    )


class TestProcessPoolHappyPath:
    def test_jobs_verify_on_child_processes(self, tmp_path, tiny_system):
        server = _make_server(tmp_path, workers=2)
        try:
            client = VerifasClient(server.url, poll_initial=0.02)
            handles = client.submit(
                dump_system(tiny_system),
                [dump_property(p) for p in _properties()],
                options={"timeout_seconds": 60},
            )
            views = client.wait_all([h.id for h in handles], deadline_seconds=60)
            assert views[handles[0].id]["result"]["outcome"] == "violated"
            assert views[handles[1].id]["result"]["outcome"] == "satisfied"

            workers = server.metrics_view()["workers"]
            assert workers["model"] == "process"
            assert workers["processes_alive"] == 2
            pids = {gauge["pid"] for gauge in workers["pool"]}
            assert len(pids) == 2 and os.getpid() not in pids
            assert sum(g["jobs_completed"] for g in workers["pool"]) == 2

            # The event log is fed through the pipe, indistinguishable from
            # a thread-worker run: phase events first, a terminal done.
            kinds = [e["kind"] for e in client.events(handles[0].id)["events"]]
            assert kinds[0] == "phase" and kinds[-1] == "done"
        finally:
            server.stop()

    def test_duplicate_submission_is_a_cache_hit_across_processes(
        self, tmp_path, tiny_system
    ):
        server = _make_server(tmp_path, workers=1)
        try:
            client = VerifasClient(server.url, poll_initial=0.02)
            payload = [dump_property(_properties()[0])]
            first = client.submit(
                dump_system(tiny_system), payload, options={"timeout_seconds": 60}
            )[0]
            client.wait(first.id, deadline_seconds=60)
            second = client.submit(
                dump_system(tiny_system), payload, options={"timeout_seconds": 60}
            )[0]
            view = client.wait(second.id, deadline_seconds=60)
            assert view["cache_hit"] is True
            assert server.metrics.counter("verifications_run") == 1
        finally:
            server.stop()


class TestCrossProcessCancellation:
    def test_delete_stops_a_hot_process_search_with_partial_stats(
        self, tmp_path, exploding_system
    ):
        """Acceptance: DELETE on a running process-worker job terminates the
        search within its poll interval and returns `cancelled` with the
        partial statistics gathered so far."""
        server = _make_server(tmp_path, workers=1)
        try:
            client = VerifasClient(server.url, poll_initial=0.02)
            handle = client.submit(
                dump_system(exploding_system),
                [dump_property(_exploding_property())],
                options={"max_states": 500_000},
            )[0]
            _wait_for_progress(client, handle.id)

            cancelled_at = time.monotonic()
            ack = client.cancel(handle.id)
            assert ack["status"] == "cancelling" and ack["cancelled"] is True
            view = client.wait(handle.id, deadline_seconds=10)
            stopped_after = time.monotonic() - cancelled_at

            assert view["status"] == "cancelled"
            assert stopped_after < 5.0  # well within one event-poll interval
            result = view["result"]
            assert result["outcome"] == "unknown"
            assert result["stats"]["cancelled"] is True
            assert result["stats"]["states_explored"] > 0
            # The partial verdict never enters the fingerprint-keyed cache.
            assert not server.store.has_result(handle.fingerprint)
            assert server.metrics.counter("jobs_cancelled") == 1
            # The worker process survives its cancelled job and stays idle.
            workers = server.metrics_view()["workers"]
            assert workers["processes_alive"] == 1
            assert workers["pool"][0]["crashes"] == 0
        finally:
            server.stop()


class TestKillAWorker:
    def test_sigkilled_worker_job_requeues_and_completes_on_a_respawn(
        self, tmp_path, exploding_system
    ):
        """Extends the PR 2 kill/restart suite down to worker granularity:
        SIGKILL the child mid-search; the agent detects the crash, releases
        the job through the recovery semantics, respawns a fresh child, and
        the job (plus its queued fingerprint-twin) still completes."""
        server = _make_server(tmp_path, workers=1)
        try:
            client = VerifasClient(server.url, poll_initial=0.02)
            # timeout_seconds bounds the *re-run* after the crash, so the
            # test terminates quickly; it is fingerprinted, hence cacheable.
            options = {"max_states": 500_000, "timeout_seconds": 3}
            payload = [dump_property(_exploding_property())]
            handle = client.submit(
                dump_system(exploding_system), payload, options=options
            )[0]
            twin = client.submit(
                dump_system(exploding_system), payload, options=options
            )[0]
            assert twin.fingerprint == handle.fingerprint
            _wait_for_progress(client, handle.id)

            victim_pid = server.metrics_view()["workers"]["pool"][0]["pid"]
            assert victim_pid is not None
            os.kill(victim_pid, signal.SIGKILL)

            # Both the crashed job and its deferred twin complete: the job
            # re-runs on a respawned child, the twin lands as a cache hit.
            views = client.wait_all([handle.id, twin.id], deadline_seconds=60)
            assert views[handle.id]["status"] == "done"
            assert views[twin.id]["status"] == "done"
            assert views[twin.id]["cache_hit"] is True

            assert server.metrics.counter("worker_crashes") == 1
            workers = server.metrics_view()["workers"]
            assert workers["pool"][0]["crashes"] == 1
            respawned = workers["pool"][0]["pid"]
            assert respawned is not None and respawned != victim_pid
            assert workers["processes_alive"] == 1

            # The crash is visible in the job's event log, with the
            # recovery disposition.
            events = client.events(handle.id)["events"]
            crash_events = [e for e in events if e["kind"] == "worker-crash"]
            assert len(crash_events) == 1
            assert crash_events[0]["data"]["disposition"] == "requeued"
            assert server.metrics.counter("verifications_run") == 2  # run + re-run
        finally:
            server.stop()

    def test_cancel_requested_then_crash_finalises_cancelled(
        self, tmp_path, exploding_system
    ):
        """A cancel accepted before the worker died must be honoured: the
        job lands `cancelled`, never rising from the dead as `queued`."""
        server = _make_server(tmp_path, workers=1)
        try:
            client = VerifasClient(server.url, poll_initial=0.02)
            handle = client.submit(
                dump_system(exploding_system),
                [dump_property(_exploding_property())],
                options={"max_states": 500_000},
            )[0]
            _wait_for_progress(client, handle.id)
            victim_pid = server.metrics_view()["workers"]["pool"][0]["pid"]

            # Freeze the child so it cannot unwind cooperatively, accept the
            # cancel, then kill it -- the crash path must finalise the job.
            os.kill(victim_pid, signal.SIGSTOP)
            ack = client.cancel(handle.id)
            assert ack["status"] == "cancelling"
            os.kill(victim_pid, signal.SIGKILL)

            view = client.wait(handle.id, deadline_seconds=30)
            assert view["status"] == "cancelled"
            assert server.store.get_job(handle.id).status == "cancelled"
        finally:
            server.stop()


class TestWorkerRecycling:
    def test_worker_is_recycled_after_max_jobs(self, tmp_path, tiny_system):
        server = _make_server(tmp_path, workers=1, max_jobs_per_worker=1)
        try:
            client = VerifasClient(server.url, poll_initial=0.02)
            first = client.submit(
                dump_system(tiny_system), [dump_property(_properties()[0])],
                options={"timeout_seconds": 60},
            )[0]
            client.wait(first.id, deadline_seconds=60)
            pid_before = server.metrics_view()["workers"]["pool"][0]["pid"]
            second = client.submit(
                dump_system(tiny_system), [dump_property(_properties()[1])],
                options={"timeout_seconds": 60},
            )[0]
            client.wait(second.id, deadline_seconds=60)
            workers = server.metrics_view()["workers"]
            assert workers["pool"][0]["recycles"] == 1
            assert workers["pool"][0]["pid"] != pid_before
            assert server.metrics.counter("worker_recycles") == 1
            # Recycling is invisible to the jobs themselves.
            assert client.job(first.id)["result"]["outcome"] == "violated"
            assert client.job(second.id)["result"]["outcome"] == "satisfied"
        finally:
            server.stop()


class TestThreadFallback:
    def test_unspawnable_environment_degrades_to_threads(
        self, tmp_path, tiny_system, monkeypatch
    ):
        monkeypatch.setattr(
            "repro.server.app.probe_process_support",
            lambda: "RuntimeError: no spawn here",
        )
        server = VerificationServer(
            store_path=tmp_path / "jobs.db", port=0, workers=1,
            worker_model="process",
        )
        server.start()
        try:
            assert server.worker_model == "thread"
            assert server.requested_worker_model == "process"
            assert "no spawn here" in server.worker_fallback_error
            workers = server.metrics_view()["workers"]
            assert workers["model"] == "thread"
            assert workers["fallback_error"] == "RuntimeError: no spawn here"
            # ... and the degraded server still verifies.
            client = VerifasClient(server.url, poll_initial=0.02)
            handle = client.submit(
                dump_system(tiny_system), [dump_property(_properties()[1])],
                options={"timeout_seconds": 60},
            )[0]
            view = client.wait(handle.id, deadline_seconds=60)
            assert view["result"]["outcome"] == "satisfied"
        finally:
            server.stop()

    def test_unknown_worker_model_is_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="worker_model"):
            VerificationServer(store_path=tmp_path / "jobs.db", worker_model="fibers")


@pytest.mark.slow
class TestProcessSpeedup:
    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 4, reason="speedup needs >= 4 cores"
    )
    def test_cpu_heavy_batch_is_faster_on_processes(
        self, tmp_path, small_exploding_system
    ):
        """Acceptance: 4 CPU-heavy jobs on 4 process workers beat the thread
        model by >1.5x wall time (the thread model serialises the CPU-bound
        Karp-Miller search on the GIL)."""
        system_dict = dump_system(small_exploding_system)
        # Four distinct fingerprints (no dedup), each several seconds of
        # pure state expansion (the search exhausts the space well under
        # max_states, so every run does identical, deterministic work).
        payloads = [[dump_property(_exploding_property(index))] for index in range(4)]
        options = {"max_states": 100_000}

        def run(worker_model: str) -> float:
            server = VerificationServer(
                store_path=tmp_path / f"{worker_model}.db", port=0, workers=4,
                worker_model=worker_model,
            )
            server.start()
            try:
                client = VerifasClient(server.url, poll_initial=0.02)
                handles = [
                    client.submit(system_dict, payload, options=options)[0]
                    for payload in payloads
                ]
                started = time.monotonic()
                client.wait_all([h.id for h in handles], deadline_seconds=600)
                return time.monotonic() - started
            finally:
                server.stop()

        process_seconds = run("process")
        thread_seconds = run("thread")
        assert thread_seconds / process_seconds > 1.5, (
            f"expected >1.5x speedup, got {thread_seconds:.2f}s (thread) vs "
            f"{process_seconds:.2f}s (process)"
        )
