"""End-to-end tests of the HTTP verification server (repro.server).

Covers the subsystem acceptance criteria: jobs submitted over HTTP from
concurrent client threads, a server killed mid-queue, and a restart on the
same SQLite store that serves completed results without re-invoking the
verifier while resuming and finishing the queued jobs.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.client import auth_headers
from repro.has.conditions import Const, Eq, Neq, NULL, Var
from repro.ltl import LTLFOProperty, parse_ltl
from repro.server import VerificationServer
from repro.spec import dump_property, dump_system

OPTIONS = {"timeout_seconds": 30}


# ---------------------------------------------------------------------- client


def _request(url: str, method: str = "GET", payload=None):
    """(status, parsed JSON body) for one API call; errors don't raise."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json", **auth_headers()},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def _submit(url: str, payload) -> list:
    status, body = _request(f"{url}/jobs", "POST", payload)
    assert status == 202, body
    return body["jobs"]


def _wait_for(url: str, job_ids, deadline_seconds: float = 60.0) -> dict:
    """Poll until every job id is done/error; returns {id: job view}."""
    deadline = time.monotonic() + deadline_seconds
    views = {}
    while time.monotonic() < deadline:
        views = {}
        for job_id in job_ids:
            status, body = _request(f"{url}/jobs/{job_id}")
            assert status == 200, body
            views[job_id] = body
        if all(v["status"] in ("done", "error") for v in views.values()):
            return views
        time.sleep(0.05)
    raise AssertionError(f"jobs did not finish in time: {views}")


def _payload(system, properties, label=None):
    data = {
        "schema_version": 1,
        "system": dump_system(system),
        "properties": [dump_property(p) for p in properties],
        "options": OPTIONS,
    }
    if label is not None:
        data["label"] = label
    return data


def _properties(task="Main"):
    picked = Eq(Var("status"), Const("picked"))
    shipped = Eq(Var("status"), Const("shipped"))
    return [
        LTLFOProperty(task, parse_ltl("G ns"), {"ns": Neq(Var("status"), Const("shipped"))},
                      name="never-shipped"),
        LTLFOProperty(task, parse_ltl("G (p -> F s)"), {"p": picked, "s": shipped},
                      name="picked-then-shipped"),
        LTLFOProperty(task, parse_ltl("F p"), {"p": picked}, name="eventually-picked"),
        LTLFOProperty(task, parse_ltl("G (s -> X n)"), {"s": shipped, "n": Eq(Var("status"), NULL)},
                      name="reset-after-ship"),
    ]


@pytest.fixture
def server(tmp_path, worker_model):
    server = VerificationServer(
        store_path=tmp_path / "jobs.db", port=0, workers=2, worker_model=worker_model
    )
    server.start()
    yield server
    server.stop()


# -------------------------------------------------------------------- protocol


class TestApi:
    def test_healthz(self, server):
        code, body = _request(f"{server.url}/healthz")
        assert code == 200
        assert body["status"] == "ok"
        assert body["uptime_seconds"] >= 0

    def test_submit_poll_and_fetch_result_with_counterexample(self, server, tiny_system):
        jobs = _submit(server.url, _payload(tiny_system, _properties()[:1], label="smoke"))
        assert len(jobs) == 1 and jobs[0]["status"] == "queued"
        assert jobs[0]["property"] == "never-shipped"
        view = _wait_for(server.url, [jobs[0]["id"]])[jobs[0]["id"]]
        assert view["status"] == "done" and view["label"] == "smoke"
        result = view["result"]
        assert result["outcome"] == "violated"
        # The persisted counterexample travels through HTTP intact.
        services = [step["service"] for step in result["counterexample"]["steps"]]
        assert "ship" in services

    def test_one_job_per_property(self, server, tiny_system):
        jobs = _submit(server.url, _payload(tiny_system, _properties()))
        assert [j["property"] for j in jobs] == [p.name for p in _properties()]
        assert len({j["fingerprint"] for j in jobs}) == 4

    def test_single_property_payload(self, server, tiny_system):
        payload = {
            "system": dump_system(tiny_system),
            "property": dump_property(_properties()[2]),
            "options": OPTIONS,
        }
        jobs = _submit(server.url, payload)
        views = _wait_for(server.url, [jobs[0]["id"]])
        assert views[jobs[0]["id"]]["result"]["outcome"] == "satisfied"

    def test_duplicate_submission_is_a_cache_hit(self, server, tiny_system):
        payload = _payload(tiny_system, _properties()[:1])
        first = _submit(server.url, payload)[0]
        _wait_for(server.url, [first["id"]])
        runs_before = _request(f"{server.url}/metrics")[1]["counters"]["verifications_run"]
        second = _submit(server.url, payload)[0]
        assert second["id"] != first["id"]
        assert second["fingerprint"] == first["fingerprint"]
        view = _wait_for(server.url, [second["id"]])[second["id"]]
        assert view["cache_hit"] is True
        assert view["result"]["outcome"] == "violated"
        runs_after = _request(f"{server.url}/metrics")[1]["counters"]["verifications_run"]
        assert runs_after == runs_before  # verifier not re-invoked

    def test_concurrent_duplicate_submissions_verify_once(self, server, tiny_system):
        """Two in-flight jobs with one fingerprint must not both hit the verifier."""
        payload = _payload(tiny_system, _properties()[:1])
        jobs, errors = [], []
        lock = threading.Lock()

        def client():
            try:
                submitted = _submit(server.url, payload)
                with lock:
                    jobs.extend(submitted)
            except Exception as error:  # pragma: no cover - surfaced by assert
                with lock:
                    errors.append(error)

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors and len(jobs) == 4
        views = _wait_for(server.url, [j["id"] for j in jobs])
        assert all(v["status"] == "done" for v in views.values())
        assert sorted(v["cache_hit"] for v in views.values()) == [False, True, True, True]
        _, metrics = _request(f"{server.url}/metrics")
        assert metrics["counters"]["verifications_run"] == 1

    def test_keep_alive_connection_survives_an_unread_post_body(self, server, tiny_system):
        """Error paths that skip the body must not corrupt a reused connection."""
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        try:
            body = json.dumps(_payload(tiny_system, _properties()[:1]))
            connection.request("POST", "/nope", body=body,
                               headers={"Content-Type": "application/json"})
            response = connection.getresponse()
            assert response.status == 404
            assert response.getheader("Connection") == "close"
            response.read()
            # The server closed the connection rather than leave the unread
            # body to be misparsed as the next request line; http.client
            # transparently reconnects for the follow-up request.
            connection.request("GET", "/healthz")
            follow_up = connection.getresponse()
            assert follow_up.status == 200
            follow_up.read()
        finally:
            connection.close()

    def test_list_jobs_with_status_filter(self, server, tiny_system):
        jobs = _submit(server.url, _payload(tiny_system, _properties()[:2]))
        _wait_for(server.url, [j["id"] for j in jobs])
        status, body = _request(f"{server.url}/jobs?status=done&limit=10")
        assert status == 200
        assert {j["id"] for j in body["jobs"]} >= {j["id"] for j in jobs}
        assert body["counts"]["done"] >= 2

    def test_metrics_shape(self, server, tiny_system):
        jobs = _submit(server.url, _payload(tiny_system, _properties()[:1]))
        _wait_for(server.url, [j["id"] for j in jobs])
        status, metrics = _request(f"{server.url}/metrics")
        assert status == 200
        assert metrics["counters"]["jobs_submitted"] >= 1
        assert metrics["counters"]["jobs_completed"] >= 1
        assert metrics["queue"]["depth"] == 0
        assert metrics["job_latency"]["count"] >= 1
        assert metrics["job_latency"]["p50_seconds"] is not None
        assert metrics["job_latency"]["p99_seconds"] >= metrics["job_latency"]["p50_seconds"]
        assert 0.0 <= metrics["cache"]["hit_rate"] <= 1.0 or metrics["cache"]["hit_rate"] is None
        assert metrics["recovery"] == {
            "requeued": 0, "queued": 0, "completed": 0, "errored": 0,
            "cancelled": 0, "cancelled_interrupted": 0, "results_retained": 0,
        }


class TestApiErrors:
    def test_malformed_json_body(self, server):
        request = urllib.request.Request(
            f"{server.url}/jobs", data=b"{not json", method="POST",
            headers=auth_headers(),
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_missing_system_section(self, server):
        status, body = _request(f"{server.url}/jobs", "POST", {"properties": []})
        assert status == 400 and "system" in body["error"]

    def test_newer_schema_version_rejected(self, server, tiny_system):
        payload = _payload(tiny_system, _properties()[:1])
        payload["schema_version"] = 999
        status, body = _request(f"{server.url}/jobs", "POST", payload)
        assert status == 400

    def test_empty_properties_rejected(self, server, tiny_system):
        status, body = _request(
            f"{server.url}/jobs", "POST",
            {"system": dump_system(tiny_system), "properties": []},
        )
        assert status == 400 and "properties" in body["error"]

    def test_both_property_and_properties_rejected(self, server, tiny_system):
        prop = dump_property(_properties()[0])
        status, body = _request(
            f"{server.url}/jobs", "POST",
            {"system": dump_system(tiny_system), "property": prop, "properties": [prop]},
        )
        assert status == 400

    def test_invalid_system_is_rejected_with_400(self, server, tiny_system):
        payload = _payload(tiny_system, _properties()[:1])
        payload["system"]["hierarchy"]["Main"] = "Main"  # self-parent: invalid
        status, body = _request(f"{server.url}/jobs", "POST", payload)
        assert status == 400 and "error" in body

    def test_unknown_option_keys_are_rejected(self, server, tiny_system):
        payload = _payload(tiny_system, _properties()[:1])
        payload["options"] = {"timeout": 30}  # typo for timeout_seconds
        status, body = _request(f"{server.url}/jobs", "POST", payload)
        assert status == 400 and "unknown verifier option" in body["error"]
        assert "timeout" in body["error"]

    def test_unknown_job_is_404(self, server):
        status, body = _request(f"{server.url}/jobs/ffffffffffff")
        assert status == 404 and "error" in body

    def test_unknown_path_is_404(self, server):
        assert _request(f"{server.url}/nope")[0] == 404
        assert _request(f"{server.url}/nope", "POST", {})[0] == 404

    def test_bad_query_parameters_are_400(self, server):
        assert _request(f"{server.url}/jobs?limit=many")[0] == 400
        assert _request(f"{server.url}/jobs?status=finished")[0] == 400


# ----------------------------------------------------------------- end-to-end


class TestRestartRecovery:
    """Acceptance: concurrent submits, kill mid-queue, restart on the store."""

    def test_kill_mid_queue_then_restart_resumes_without_reverifying(
        self, tmp_path, tiny_system, relation_system
    ):
        store_path = tmp_path / "jobs.db"
        properties = _properties()

        # Phase 1: four concurrent client threads each submit one payload.
        server_a = VerificationServer(store_path=store_path, port=0, workers=2)
        server_a.start()
        submitted, errors = [], []
        lock = threading.Lock()

        def client(system, props):
            try:
                jobs = _submit(server_a.url, _payload(system, props))
                with lock:
                    submitted.extend(jobs)
            except Exception as error:  # pragma: no cover - surfaced by assert
                with lock:
                    errors.append(error)

        threads = [
            threading.Thread(target=client, args=(tiny_system, properties[:2])),
            threading.Thread(target=client, args=(tiny_system, properties[2:])),
            threading.Thread(target=client, args=(relation_system, properties[:1])),
            threading.Thread(target=client, args=(relation_system, properties[1:2])),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors and len(submitted) == 6
        phase1_ids = [j["id"] for j in submitted]
        phase1_views = _wait_for(server_a.url, phase1_ids)
        assert all(v["status"] == "done" for v in phase1_views.values())
        server_a.stop()

        # Phase 2: a worker-less server accepts more jobs over HTTP, then is
        # killed with its whole queue pending (one job artificially left
        # `running`, as if a worker died mid-verification).  Two of the four
        # new jobs duplicate phase-1 fingerprints.
        server_b = VerificationServer(store_path=store_path, port=0, workers=0)
        server_b.start()
        queued = _submit(server_b.url, _payload(tiny_system, properties[:2]))       # duplicates
        queued += _submit(server_b.url, _payload(relation_system, properties[2:]))  # fresh work
        assert len(queued) == 4
        interrupted = server_b.store.claim_next()  # simulate dying mid-job
        assert interrupted is not None
        server_b.stop()

        # Phase 3: restart on the same store.
        server_c = VerificationServer(store_path=store_path, port=0, workers=2)
        server_c.start()
        assert server_c.recovery.requeued == 1
        assert server_c.recovery.queued == 4
        assert server_c.recovery.completed == 6
        assert server_c.recovery.results_retained == 6

        views = _wait_for(server_c.url, [j["id"] for j in queued])
        assert all(v["status"] == "done" for v in views.values())

        # The two duplicated jobs were served from the persistent store with a
        # cold memory cache -- no verifier invocation, counted as cache hits.
        duplicate_ids = [j["id"] for j in queued[:2]]
        fresh_ids = [j["id"] for j in queued[2:]]
        assert all(views[job_id]["cache_hit"] for job_id in duplicate_ids)
        assert all(not views[job_id]["cache_hit"] for job_id in fresh_ids)
        _, metrics = _request(f"{server_c.url}/metrics")
        assert metrics["counters"]["verifications_run"] == 2  # only the fresh jobs
        assert metrics["cache"]["store_hits"] == 2            # duplicates came from SQLite
        assert metrics["queue"]["depth"] == 0

        # Completed results agree with what phase 1 computed.
        for job in queued[:2]:
            match = next(
                v for v in phase1_views.values() if v["fingerprint"] == job["fingerprint"]
            )
            assert views[job["id"]]["result"]["outcome"] == match["result"]["outcome"]
        server_c.stop()

    def test_serve_forever_blocks_until_stopped(self, tmp_path):
        server = VerificationServer(store_path=tmp_path / "jobs.db", port=0, workers=1)
        server.start()
        blocked = threading.Thread(target=server.serve_forever, daemon=True)
        blocked.start()
        assert _request(f"{server.url}/healthz")[0] == 200
        server.stop()
        blocked.join(timeout=10)
        assert not blocked.is_alive()

    def test_restart_with_no_pending_work_is_clean(self, tmp_path):
        server_a = VerificationServer(store_path=tmp_path / "jobs.db", port=0, workers=1)
        server_a.start()
        server_a.stop()
        server_b = VerificationServer(store_path=tmp_path / "jobs.db", port=0, workers=1)
        assert server_b.recovery.requeued == 0
        server_b.start()
        assert _request(f"{server_b.url}/healthz")[0] == 200
        server_b.stop()
