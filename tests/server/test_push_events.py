"""Push delivery of progress events: long-poll, SSE, and the request-count
acceptance bound.

The headline guarantee: a job whose log holds N events is fully observed
over long-poll with at most ``ceil(N / limit) + 1`` HTTP requests -- one per
full page plus at most one closing probe -- and never more requests than the
plain-polling baseline.  The same bound must hold when the observing server
is NOT the one that wrote the events (two servers sharing one store file),
where delivery degrades to the store-cursor fallback instead of in-process
wakeups.
"""

from __future__ import annotations

import json
import math
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.client import ClientError, VerifasClient, auth_headers
from repro.has.conditions import Const, Eq, Var
from repro.ltl import LTLFOProperty, parse_ltl
from repro.server import VerificationServer
from repro.spec import dump_property, dump_system

OPTIONS = {"timeout_seconds": 60}


def _property():
    return LTLFOProperty(
        "Main", parse_ltl("F p"),
        {"p": Eq(Var("status"), Const("picked"))}, name="eventually-picked",
    )


class CountingClient(VerifasClient):
    """A client that counts every HTTP request it issues."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.request_count = 0

    def _request(self, method, path, payload=None, timeout=None, headers=None):
        self.request_count += 1
        return super()._request(method, path, payload, timeout=timeout, headers=headers)


@pytest.fixture
def idle_server(tmp_path):
    """A worker-less server: jobs stay queued until the test drives them."""
    server = VerificationServer(
        store_path=tmp_path / "jobs.db", port=0, workers=0,
        push_fallback_interval=0.05,
    )
    server.start()
    yield server
    server.stop()


def _submit_one(server, tiny_system, ttl_seconds=None):
    client = VerifasClient(server.url)
    payload = {
        "system": dump_system(tiny_system),
        "properties": [dump_property(_property())],
        "options": OPTIONS,
    }
    if ttl_seconds is not None:
        payload["ttl_seconds"] = ttl_seconds
    return client.submit_payload(payload)[0]


def _append_events(store, job_id, count, start=0):
    for index in range(start, start + count):
        store.append_event(
            job_id, "progress", {"data": {"states_explored": (index + 1) * 25}}
        )


# ------------------------------------------------------- the acceptance bound


class TestRequestCountBound:
    @pytest.mark.parametrize("n_events,limit", [(100, 30), (100, 25), (7, 500)])
    def test_push_drain_within_page_bound(
        self, idle_server, tiny_system, n_events, limit
    ):
        """N logged events over long-poll: at most ceil(N/limit)+1 requests."""
        handle = _submit_one(idle_server, tiny_system)
        _append_events(idle_server.store, handle.id, n_events)
        idle_server.store.mark_done(handle.id, {"outcome": "satisfied"})

        client = CountingClient(idle_server.url, push_events=True, wait_ms=2_000)
        events = list(client.iter_events(handle.id, poll_limit=limit))
        assert len(events) == n_events
        assert [e["seq"] for e in events] == list(range(1, n_events + 1))
        assert client.request_count <= math.ceil(n_events / limit) + 1

    def test_terminal_short_page_needs_no_closing_probe(
        self, idle_server, tiny_system
    ):
        """A terminal page shorter than the limit ends iteration on the spot:
        exactly ceil(N/limit) requests, no extra round-trip (satellite fix)."""
        handle = _submit_one(idle_server, tiny_system)
        _append_events(idle_server.store, handle.id, 10)
        idle_server.store.mark_done(handle.id, {"outcome": "satisfied"})

        client = CountingClient(idle_server.url, push_events=True, wait_ms=2_000)
        assert len(list(client.iter_events(handle.id, poll_limit=500))) == 10
        assert client.request_count == 1

    def test_limit_exactly_at_page_size(self, idle_server, tiny_system):
        """N == limit: the full page cannot prove completeness, so exactly
        one closing probe follows -- the "+1" in the bound, no worse."""
        handle = _submit_one(idle_server, tiny_system)
        _append_events(idle_server.store, handle.id, 20)
        idle_server.store.mark_done(handle.id, {"outcome": "satisfied"})

        client = CountingClient(idle_server.url, push_events=True, wait_ms=2_000)
        assert len(list(client.iter_events(handle.id, poll_limit=20))) == 20
        assert client.request_count == 2

    def test_push_beats_polling_on_a_slow_emitter(self, idle_server, tiny_system):
        """Live emission: long-poll parks on the server between events, while
        the polling baseline burns empty pages -- push issues fewer requests
        and still sees every event."""
        n_events = 8

        def run(client_cls, push):
            handle = _submit_one(idle_server, tiny_system)

            def emit():
                for index in range(n_events):
                    time.sleep(0.06)
                    _append_events(idle_server.store, handle.id, 1, start=index)
                idle_server.store.mark_done(handle.id, {"outcome": "satisfied"})

            emitter = threading.Thread(target=emit)
            emitter.start()
            client = client_cls(
                idle_server.url, push_events=push, wait_ms=5_000,
                poll_initial=0.005, poll_max=0.02,
            )
            events = list(client.iter_events(handle.id, deadline_seconds=30))
            emitter.join()
            return events, client.request_count

        push_events, push_requests = run(CountingClient, push=True)
        poll_events, poll_requests = run(CountingClient, push=False)
        assert len(push_events) == len(poll_events) == n_events
        assert push_requests <= poll_requests
        # Push never needs more than one wakeup per event plus the close.
        assert push_requests <= n_events + 1

    def test_idle_long_poll_parks_in_one_request(self, idle_server, tiny_system):
        """A long-poll on a quiet job is ONE held request, not a poll storm."""
        handle = _submit_one(idle_server, tiny_system)
        client = CountingClient(idle_server.url)
        started = time.monotonic()
        page = client.events(handle.id, wait_ms=300)
        elapsed = time.monotonic() - started
        assert client.request_count == 1
        assert page["events"] == [] and page["terminal"] is False
        assert 0.25 <= elapsed < 5.0

    def test_long_poll_wakes_promptly_on_append(self, idle_server, tiny_system):
        handle = _submit_one(idle_server, tiny_system)

        def append_soon():
            time.sleep(0.1)
            _append_events(idle_server.store, handle.id, 1)

        appender = threading.Thread(target=append_soon)
        appender.start()
        started = time.monotonic()
        page = VerifasClient(idle_server.url).events(handle.id, wait_ms=10_000)
        elapsed = time.monotonic() - started
        appender.join()
        assert len(page["events"]) == 1
        assert elapsed < 5.0  # woke on the append, not the 10s deadline


class TestTwoServersSharedStore:
    def test_push_bound_holds_across_servers(self, tmp_path, tiny_system):
        """Events written via server A are observed via server B under the
        same request bound: B's broker never hears about A's commits, so
        delivery rides the store-cursor fallback re-read."""
        store_path = tmp_path / "shared.db"
        a = VerificationServer(
            store_path=store_path, port=0, workers=0, server_id="a",
            push_fallback_interval=0.05,
        )
        a.start()
        b = VerificationServer(
            store_path=store_path, port=0, workers=0, server_id="b",
            push_fallback_interval=0.05,
        )
        b.start()
        try:
            handle = _submit_one(a, tiny_system)
            n_events, limit = 100, 30
            _append_events(a.store, handle.id, n_events)
            a.store.mark_done(handle.id, {"outcome": "satisfied"})

            client = CountingClient(b.url, push_events=True, wait_ms=2_000)
            events = list(client.iter_events(handle.id, poll_limit=limit))
            assert len(events) == n_events
            assert client.request_count <= math.ceil(n_events / limit) + 1
        finally:
            a.stop()
            b.stop()

    def test_cross_server_live_append_arrives_within_fallback(
        self, tmp_path, tiny_system
    ):
        """A long-poll held by B sees an event A writes within (roughly) one
        fallback interval, without any cross-process signalling."""
        store_path = tmp_path / "shared.db"
        a = VerificationServer(store_path=store_path, port=0, workers=0, server_id="a")
        a.start()
        b = VerificationServer(
            store_path=store_path, port=0, workers=0, server_id="b",
            push_fallback_interval=0.05,
        )
        b.start()
        try:
            handle = _submit_one(a, tiny_system)

            def append_via_a():
                time.sleep(0.15)
                _append_events(a.store, handle.id, 1)

            appender = threading.Thread(target=append_via_a)
            appender.start()
            page = VerifasClient(b.url).events(handle.id, wait_ms=10_000)
            appender.join()
            assert len(page["events"]) == 1
        finally:
            a.stop()
            b.stop()


# ----------------------------------------------------------------------- SSE


def _read_sse(url, job_id, timeout=30.0, cursor=None, last_event_id=None):
    """Open the SSE stream and return its parsed frames (reads to EOF)."""
    query = f"?wait_ms=5000" + (f"&cursor={cursor}" if cursor is not None else "")
    headers = {"Accept": "text/event-stream", **auth_headers()}
    if last_event_id is not None:
        headers["Last-Event-ID"] = str(last_event_id)
    request = urllib.request.Request(f"{url}/v1/jobs/{job_id}/events{query}", headers=headers)
    with urllib.request.urlopen(request, timeout=timeout) as response:
        assert response.headers["Content-Type"].startswith("text/event-stream")
        raw = response.read().decode("utf-8")
    frames = []
    for block in raw.split("\n\n"):
        if not block.strip():
            continue
        frame = {}
        for line in block.splitlines():
            key, _, value = line.partition(":")
            frame[key] = value.strip()
        frame["data"] = json.loads(frame["data"])
        frames.append(frame)
    return frames


class TestServerSentEvents:
    def test_stream_replays_log_and_closes_on_terminal(
        self, idle_server, tiny_system
    ):
        handle = _submit_one(idle_server, tiny_system)
        _append_events(idle_server.store, handle.id, 3)
        idle_server.store.mark_done(handle.id, {"outcome": "satisfied"})

        frames = _read_sse(idle_server.url, handle.id)
        assert [f["event"] for f in frames] == ["progress"] * 3 + ["terminal"]
        assert [f["id"] for f in frames[:3]] == ["1", "2", "3"]
        assert frames[-1]["data"]["status"] == "done"
        assert frames[-1]["data"]["terminal"] is True
        assert idle_server.metrics.counter("sse_requests") == 1

    def test_stream_follows_live_appends(self, idle_server, tiny_system):
        handle = _submit_one(idle_server, tiny_system)

        def emit():
            for index in range(4):
                time.sleep(0.05)
                _append_events(idle_server.store, handle.id, 1, start=index)
            idle_server.store.mark_done(handle.id, {"outcome": "satisfied"})

        emitter = threading.Thread(target=emit)
        emitter.start()
        frames = _read_sse(idle_server.url, handle.id)
        emitter.join()
        assert [f["event"] for f in frames] == ["progress"] * 4 + ["terminal"]

    def test_last_event_id_resumes_mid_stream(self, idle_server, tiny_system):
        handle = _submit_one(idle_server, tiny_system)
        _append_events(idle_server.store, handle.id, 5)
        idle_server.store.mark_done(handle.id, {"outcome": "satisfied"})

        frames = _read_sse(idle_server.url, handle.id, last_event_id=3)
        assert [f["id"] for f in frames[:-1]] == ["4", "5"]

    def test_unknown_job_is_a_404_not_a_stream(self, idle_server):
        request = urllib.request.Request(
            f"{idle_server.url}/v1/jobs/no-such-job/events",
            headers={"Accept": "text/event-stream", **auth_headers()},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404


# ------------------------------------------------------------- edge cases


class TestEventCursorEdges:
    def test_cursor_beyond_last_seq_returns_fast_when_terminal(
        self, idle_server, tiny_system
    ):
        handle = _submit_one(idle_server, tiny_system)
        _append_events(idle_server.store, handle.id, 3)
        idle_server.store.mark_done(handle.id, {"outcome": "satisfied"})

        started = time.monotonic()
        page = VerifasClient(idle_server.url).events(
            handle.id, cursor=999, wait_ms=10_000
        )
        assert time.monotonic() - started < 5.0  # terminal: no parking
        assert page["events"] == [] and page["terminal"] is True
        assert page["cursor"] == 999  # the cursor never moves backwards

    def test_job_swept_mid_iteration_surfaces_as_404(self, idle_server, tiny_system):
        handle = _submit_one(idle_server, tiny_system, ttl_seconds=0.01)
        _append_events(idle_server.store, handle.id, 2)
        idle_server.store.mark_done(handle.id, {"outcome": "satisfied"})

        client = VerifasClient(idle_server.url, push_events=True, wait_ms=1_000)
        first_page = client.events(handle.id, cursor=0, limit=1)
        assert len(first_page["events"]) == 1

        time.sleep(0.05)
        swept = idle_server.store.sweep_expired()
        assert swept["jobs"] == 1

        with pytest.raises(ClientError) as excinfo:
            client.events(handle.id, cursor=first_page["cursor"], wait_ms=1_000)
        assert excinfo.value.status == 404

    @pytest.mark.parametrize(
        "hostile",
        ["../../../etc/passwd", "a b%00c", "<script>alert(1)</script>", "."],
    )
    def test_hostile_job_ids_get_quick_404s(self, idle_server, hostile):
        client = VerifasClient(idle_server.url)
        started = time.monotonic()
        with pytest.raises(ClientError) as excinfo:
            client.events(hostile, wait_ms=10_000)
        assert excinfo.value.status == 404
        assert time.monotonic() - started < 5.0  # unknown job: no parking

        from urllib.parse import quote

        request = urllib.request.Request(
            f"{idle_server.url}/v1/jobs/{quote(hostile, safe='')}/events?wait_ms=10000",
            headers={"Accept": "text/event-stream", **auth_headers()},
        )
        with pytest.raises(urllib.error.HTTPError) as sse_excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert sse_excinfo.value.code == 404


# ------------------------------------------------------- batch status view


class TestBatchStatusView:
    def test_batch_view_returns_listed_jobs_with_results(
        self, idle_server, tiny_system
    ):
        first = _submit_one(idle_server, tiny_system)
        second = _submit_one(idle_server, tiny_system)
        idle_server.store.mark_done(first.id, {"outcome": "satisfied"})

        client = CountingClient(idle_server.url)
        views = client.job_views([first.id, second.id, "no-such-job"])
        assert client.request_count == 1  # the whole batch is one round-trip
        assert set(views) == {first.id, second.id}
        assert views[first.id]["status"] == "done"
        assert views[first.id]["result"] == {"outcome": "satisfied"}
        assert views[second.id]["status"] == "queued"
        assert views[second.id].get("result") is None

    def test_wait_all_uses_one_request_per_round(self, idle_server, tiny_system):
        handles = [_submit_one(idle_server, tiny_system) for _ in range(3)]
        for handle in handles:
            idle_server.store.mark_done(handle.id, {"outcome": "satisfied"})
        client = CountingClient(idle_server.url)
        views = client.wait_all([h.id for h in handles], deadline_seconds=10)
        assert len(views) == 3
        assert client.request_count == 1

    def test_wait_all_unknown_id_is_an_error(self, idle_server, tiny_system):
        handle = _submit_one(idle_server, tiny_system)
        idle_server.store.mark_done(handle.id, {"outcome": "satisfied"})
        with pytest.raises(ClientError) as excinfo:
            VerifasClient(idle_server.url).wait_all([handle.id, "ghost"])
        assert excinfo.value.status == 404


# --------------------------------------------------- end-to-end with workers


class TestPushWithRealWorkers:
    def test_real_job_fully_observed_over_push(self, tmp_path, worker_model, tiny_system):
        server = VerificationServer(
            store_path=tmp_path / "jobs.db", port=0, workers=1,
            progress_interval=25, worker_model=worker_model,
        )
        server.start()
        try:
            client = CountingClient(server.url, push_events=True, wait_ms=5_000)
            handle = client.submit(
                dump_system(tiny_system), [dump_property(_property())], options=OPTIONS
            )[0]
            events = list(client.iter_events(handle.id, deadline_seconds=60))
            kinds = [event["kind"] for event in events]
            assert kinds[0] == "phase"
            assert kinds[-1] == "done"
            assert server.metrics.counter("long_poll_requests") >= 1
            assert server.metrics.counter("events_emitted") > 0
        finally:
            server.stop()
