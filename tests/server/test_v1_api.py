"""End-to-end tests of the versioned ``/v1`` HTTP API and repro.client.

Covers the PR acceptance criteria: the client round-trips
submit → iter_events → cancel against a live server; ``DELETE /v1/jobs/<id>``
on a *running* job stops the underlying search promptly and persists a
``cancelled`` terminal state that survives a server restart; legacy
unversioned routes still answer, with a deprecation header; TTL'd jobs are
swept; ``deadline_ms`` bounds a runaway search.
"""

from __future__ import annotations

import json
import sqlite3
import time
import urllib.request

import pytest

from repro.client import ClientError, RemoteJobError, VerifasClient, auth_headers
from repro.has.conditions import Const, Eq, Neq, Var
from repro.ltl import LTLFOProperty, parse_ltl
from repro.server import JobStore, VerificationServer
from repro.spec import dump_property, dump_system

OPTIONS = {"timeout_seconds": 60}


def _properties():
    return [
        LTLFOProperty("Main", parse_ltl("G ns"),
                      {"ns": Neq(Var("status"), Const("shipped"))}, name="never-shipped"),
        LTLFOProperty("Main", parse_ltl("F p"),
                      {"p": Eq(Var("status"), Const("picked"))}, name="eventually-picked"),
    ]


def _exploding_property():
    """Satisfied on the exploding system: the search must exhaust the space."""
    return LTLFOProperty(
        "Main",
        parse_ltl("G !(p & q)"),
        {"p": Eq(Var("v0"), Const("c0")), "q": Eq(Var("v0"), Const("c1"))},
        name="consistent",
    )


def _raw(url: str, method: str = "GET", payload=None):
    """(status, headers, parsed body) bypassing the client, for header checks."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json", **auth_headers()},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, dict(response.headers), json.load(response)


@pytest.fixture
def server(tmp_path, worker_model):
    server = VerificationServer(
        store_path=tmp_path / "jobs.db", port=0, workers=2,
        sweep_interval=0.1, progress_interval=25, worker_model=worker_model,
    )
    server.start()
    yield server
    server.stop()


@pytest.fixture
def idle_server(tmp_path):
    """A worker-less server: jobs stay queued until cancelled or claimed."""
    server = VerificationServer(store_path=tmp_path / "jobs.db", port=0, workers=0)
    server.start()
    yield server
    server.stop()


@pytest.fixture
def client(server):
    return VerifasClient(server.url, poll_initial=0.02, poll_max=0.2)


# ----------------------------------------------------------------- happy path


class TestV1Protocol:
    def test_healthz_and_metrics(self, client):
        health = client.healthz()
        assert health["status"] == "ok" and health["uptime_seconds"] >= 0
        metrics = client.metrics()
        assert "counters" in metrics and "queue" in metrics

    def test_submit_wait_result_round_trip(self, client, tiny_system):
        handles = client.submit(
            dump_system(tiny_system),
            [dump_property(p) for p in _properties()],
            options=OPTIONS,
            label="v1-smoke",
        )
        assert [h.property for h in handles] == ["never-shipped", "eventually-picked"]
        assert all(h.url.startswith("/v1/jobs/") for h in handles)
        views = client.wait_all([h.id for h in handles], deadline_seconds=60)
        assert views[handles[0].id]["result"]["outcome"] == "violated"
        assert views[handles[1].id]["result"]["outcome"] == "satisfied"
        assert views[handles[0].id]["label"] == "v1-smoke"

    def test_iter_events_streams_phase_progress_done(self, client, tiny_system):
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_properties()[0])], options=OPTIONS
        )[0]
        events = list(client.iter_events(handle.id, deadline_seconds=60))
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "phase"
        assert kinds[-1] == "done"
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_events_cursor_is_incremental(self, client, tiny_system):
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_properties()[1])], options=OPTIONS
        )[0]
        client.wait(handle.id, deadline_seconds=60)
        page = client.events(handle.id)
        assert page["terminal"] is True and page["events"]
        follow_up = client.events(handle.id, cursor=page["cursor"])
        assert follow_up["events"] == []
        assert follow_up["cursor"] == page["cursor"]

    def test_unknown_job_is_a_client_error(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.job("ffffffffffff")
        assert excinfo.value.status == 404

    def test_remote_error_surfaces_as_remote_job_error(self, idle_server, tiny_system):
        client = VerifasClient(idle_server.url, poll_initial=0.02)
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_properties()[0])], options=OPTIONS
        )[0]
        idle_server.store.claim_next()
        idle_server.store.mark_error(handle.id, "RuntimeError: boom")
        with pytest.raises(RemoteJobError, match="boom"):
            client.wait(handle.id, deadline_seconds=10)

    def test_wait_times_out_on_a_stuck_queue(self, idle_server, tiny_system):
        client = VerifasClient(idle_server.url, poll_initial=0.02)
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_properties()[0])], options=OPTIONS
        )[0]
        with pytest.raises(TimeoutError):
            client.wait(handle.id, deadline_seconds=0.3)

    def test_unreachable_server_is_a_client_error(self):
        client = VerifasClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ClientError, match="cannot reach"):
            client.healthz()


class TestJobsListValidation:
    """``GET /v1/jobs`` query validation: unknown ``status`` is always a
    400 (even alongside ``?id=``), ``limit`` is validated and capped."""

    def test_unknown_status_is_400(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.jobs(status="finished")
        assert excinfo.value.status == 400
        assert "unknown job status" in str(excinfo.value)

    def test_unknown_status_with_ids_is_400_not_ignored(self, client, tiny_system):
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_properties()[0])], options=OPTIONS
        )[0]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _raw(f"{client.base_url}/v1/jobs?status=bogus&id={handle.id}")
        assert excinfo.value.code == 400

    def test_known_status_filters_the_ids_view(self, idle_server, tiny_system):
        client = VerifasClient(idle_server.url, poll_initial=0.02)
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_properties()[0])], options=OPTIONS
        )[0]
        status, _, body = _raw(
            f"{idle_server.url}/v1/jobs?status=queued&id={handle.id}"
        )
        assert status == 200 and [j["id"] for j in body["jobs"]] == [handle.id]
        status, _, body = _raw(
            f"{idle_server.url}/v1/jobs?status=done&id={handle.id}"
        )
        assert status == 200 and body["jobs"] == []

    def test_negative_limit_is_400(self, client):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _raw(f"{client.base_url}/v1/jobs?limit=-1")
        assert excinfo.value.code == 400

    def test_oversized_limit_is_clamped_not_an_error(self, client, tiny_system):
        client.submit(
            dump_system(tiny_system), [dump_property(_properties()[0])], options=OPTIONS
        )
        status, _, body = _raw(f"{client.base_url}/v1/jobs?limit=10000000")
        assert status == 200 and len(body["jobs"]) >= 1


# --------------------------------------------------------------- cancellation


class TestCancellation:
    def test_cancel_queued_job_is_terminal_immediately(self, idle_server, tiny_system):
        client = VerifasClient(idle_server.url, poll_initial=0.02)
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_properties()[0])], options=OPTIONS
        )[0]
        ack = client.cancel(handle.id)
        assert ack["status"] == "cancelled" and ack["cancelled"] is True
        view = client.job(handle.id)
        assert view["status"] == "cancelled"
        assert idle_server.metrics.counter("verifications_run") == 0
        # The cancel event lands atomically with the terminal flip, so a
        # poller observing `terminal` is guaranteed the complete event log.
        page = client.events(handle.id)
        assert page["terminal"] is True
        assert [e["kind"] for e in page["events"]] == ["cancel"]

    def test_repeated_delete_is_idempotent(self, idle_server, tiny_system):
        client = VerifasClient(idle_server.url, poll_initial=0.02)
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_properties()[0])], options=OPTIONS
        )[0]
        first = client.cancel(handle.id)
        assert first == {
            "id": handle.id, "status": "cancelled",
            "cancelled": True, "already_finished": False,
        }
        second = client.cancel(handle.id)
        assert second == {
            "id": handle.id, "status": "cancelled",
            "cancelled": False, "already_finished": True,
        }
        # No duplicate event, no double-counted metric.
        kinds = [e["kind"] for e in client.events(handle.id)["events"]]
        assert kinds.count("cancel") == 1
        assert idle_server.metrics.counter("cancel_requests") == 1

    def test_cancel_running_job_stops_search_and_persists(
        self, server, client, exploding_system, tmp_path
    ):
        """Acceptance: DELETE on a *running* job stops the search promptly and
        the `cancelled` state (with partial stats) survives a restart."""
        handle = client.submit(
            dump_system(exploding_system),
            [dump_property(_exploding_property())],
            options={"max_states": 500_000},
        )[0]
        deadline = time.monotonic() + 30
        while client.job(handle.id)["status"] != "running":
            assert time.monotonic() < deadline, "job never started running"
            time.sleep(0.02)
        # Let the search actually explore before cancelling.
        while not any(
            e["kind"] == "progress"
            for e in client.events(handle.id)["events"]
        ):
            assert time.monotonic() < deadline, "search never reported progress"
            time.sleep(0.02)

        cancelled_at = time.monotonic()
        ack = client.cancel(handle.id)
        assert ack["status"] == "cancelling" and ack["cancelled"] is True
        view = client.wait(handle.id, deadline_seconds=10)
        stopped_after = time.monotonic() - cancelled_at
        assert view["status"] == "cancelled"
        assert stopped_after < 5.0  # well within one event-poll interval

        # Partial result: UNKNOWN with the statistics gathered so far.
        result = view["result"]
        assert result["outcome"] == "unknown"
        assert result["stats"]["cancelled"] is True
        assert result["stats"]["states_explored"] > 0
        # The partial verdict must never enter the fingerprint-keyed cache.
        assert not server.store.has_result(handle.fingerprint)
        assert server.metrics.counter("jobs_cancelled") == 1

        # The cancel itself is in the event log.
        kinds = [e["kind"] for e in client.events(handle.id)["events"]]
        assert "cancel" in kinds

        # Restart on the same store: cancelled stays terminal, nothing requeues.
        server.stop()
        restarted = VerificationServer(
            store_path=tmp_path / "jobs.db", port=0, workers=2
        )
        restarted.start()
        try:
            assert restarted.recovery.requeued == 0
            assert restarted.recovery.cancelled == 1
            restarted_client = VerifasClient(restarted.url)
            view = restarted_client.job(handle.id)
            assert view["status"] == "cancelled"
            assert view["result"]["stats"]["cancelled"] is True
        finally:
            restarted.stop()

    def test_cancel_requested_before_crash_is_not_requeued(self, tmp_path, exploding_system):
        """Satellite: a job whose cancel was accepted pre-crash must not rise
        from the dead as `queued` on restart."""
        store_path = tmp_path / "jobs.db"
        server_a = VerificationServer(store_path=store_path, port=0, workers=0)
        server_a.start()
        client = VerifasClient(server_a.url, poll_initial=0.02)
        handle = client.submit(
            dump_system(exploding_system),
            [dump_property(_exploding_property())],
            options={"max_states": 500_000},
        )[0]
        # Simulate a worker claiming the job, a cancel arriving, then a crash
        # before the worker can finalise it.
        assert server_a.store.claim_next() is not None
        ack = client.cancel(handle.id)
        assert ack["status"] == "cancelling"
        server_a.stop()

        server_b = VerificationServer(store_path=store_path, port=0, workers=1)
        server_b.start()
        try:
            assert server_b.recovery.cancelled_interrupted == 1
            assert server_b.recovery.requeued == 0
            assert server_b.recovery.queued == 0
            view = VerifasClient(server_b.url).job(handle.id)
            assert view["status"] == "cancelled"
        finally:
            server_b.stop()

    def test_cancel_finished_job_is_a_no_op(self, client, tiny_system):
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_properties()[0])], options=OPTIONS
        )[0]
        client.wait(handle.id, deadline_seconds=60)
        ack = client.cancel(handle.id)
        assert ack["status"] == "done"
        assert ack["cancelled"] is False and ack["already_finished"] is True

    def test_cancel_unknown_job_is_404(self, client):
        with pytest.raises(ClientError) as excinfo:
            client.cancel("ffffffffffff")
        assert excinfo.value.status == 404


# ------------------------------------------------------------ deadlines / TTL


class TestDeadlines:
    def test_deadline_ms_bounds_a_runaway_search(self, server, client, exploding_system):
        """Satellite: deadline semantics under HTTP execution."""
        handle = client.submit(
            dump_system(exploding_system),
            [dump_property(_exploding_property())],
            options={"max_states": 500_000},
            deadline_ms=300,
        )[0]
        view = client.wait(handle.id, deadline_seconds=30)
        assert view["status"] == "done"
        assert view["deadline_ms"] == 300
        result = view["result"]
        assert result["outcome"] == "unknown"
        assert result["stats"]["timed_out"] is True
        assert result["stats"]["cancelled"] is False
        # deadline_ms is not part of the content fingerprint, so the
        # truncated UNKNOWN verdict must not poison the result cache for a
        # later deadline-less submission of the same inputs.
        assert not server.store.has_result(handle.fingerprint)

    def test_fingerprinted_options_timeout_stays_cacheable(
        self, server, client, exploding_system
    ):
        """A timeout from options.timeout_seconds (part of the fingerprint)
        keeps its pre-existing cacheability even when a generous deadline_ms
        is also set."""
        handle = client.submit(
            dump_system(exploding_system),
            [dump_property(_exploding_property())],
            options={"max_states": 500_000, "timeout_seconds": 0.3},
            deadline_ms=3_600_000,
        )[0]
        view = client.wait(handle.id, deadline_seconds=30)
        assert view["result"]["outcome"] == "unknown"
        assert view["result"]["stats"]["timed_out"] is True
        # Deterministic per fingerprint (the timeout is in the options), so
        # it is cached as it always was.
        assert server.store.has_result(handle.fingerprint)


class TestTtlSweeper:
    def test_expired_jobs_events_and_results_are_swept(self, server, client, tiny_system):
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_properties()[0])],
            options=OPTIONS, ttl_seconds=0.3,
        )[0]
        view = client.wait(handle.id, deadline_seconds=60)
        assert view["ttl_seconds"] == 0.3 and view["expires_at"] > view["finished_at"]
        deadline = time.monotonic() + 15
        while True:
            try:
                client.job(handle.id)
            except ClientError as error:
                assert error.status == 404
                break
            assert time.monotonic() < deadline, "job was never swept"
            time.sleep(0.05)
        assert server.store.event_count(handle.id) == 0
        assert not server.store.has_result(handle.fingerprint)
        assert server.metrics.counter("jobs_expired") >= 1

    def test_ttl_less_jobs_are_never_swept(self, server, client, tiny_system):
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_properties()[1])], options=OPTIONS
        )[0]
        client.wait(handle.id, deadline_seconds=60)
        time.sleep(0.3)  # several sweep intervals
        assert client.job(handle.id)["status"] == "done"
        assert server.store.has_result(handle.fingerprint)

    def test_shared_result_survives_while_a_job_references_it(
        self, server, client, tiny_system
    ):
        payload_props = [dump_property(_properties()[0])]
        keeper = client.submit(
            dump_system(tiny_system), payload_props, options=OPTIONS
        )[0]
        expiring = client.submit(
            dump_system(tiny_system), payload_props, options=OPTIONS, ttl_seconds=0.2
        )[0]
        assert keeper.fingerprint == expiring.fingerprint
        client.wait_all([keeper.id, expiring.id], deadline_seconds=60)
        deadline = time.monotonic() + 15
        while True:
            try:
                client.job(expiring.id)
            except ClientError:
                break
            assert time.monotonic() < deadline, "expiring job was never swept"
            time.sleep(0.05)
        # The TTL-less twin still references the fingerprint: result retained.
        assert client.job(keeper.id)["status"] == "done"
        assert server.store.has_result(keeper.fingerprint)


# ------------------------------------------------------------- legacy shims


class TestLegacyShims:
    def test_legacy_routes_answer_with_deprecation_headers(self, server):
        status, headers, body = _raw(f"{server.url}/healthz")
        assert status == 200 and body["status"] == "ok"
        assert headers.get("Deprecation") == "true"
        assert '</v1/healthz>; rel="successor-version"' in headers.get("Link", "")

    def test_v1_routes_carry_no_deprecation_header(self, server):
        status, headers, _body = _raw(f"{server.url}/v1/healthz")
        assert status == 200
        assert "Deprecation" not in headers

    def test_legacy_submit_and_poll_still_work(self, server, tiny_system):
        payload = {
            "schema_version": 1,
            "system": dump_system(tiny_system),
            "properties": [dump_property(p) for p in _properties()],
            "options": OPTIONS,
        }
        status, headers, body = _raw(f"{server.url}/jobs", "POST", payload)
        assert status == 202
        assert headers.get("Deprecation") == "true"
        # Legacy responses keep legacy (unversioned) resource URLs.
        assert all(job["url"].startswith("/jobs/") for job in body["jobs"])
        job_id = body["jobs"][0]["id"]
        deadline = time.monotonic() + 60
        while True:
            status, headers, view = _raw(f"{server.url}/jobs/{job_id}")
            assert status == 200 and headers.get("Deprecation") == "true"
            if view["status"] in ("done", "error"):
                break
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert view["result"]["outcome"] == "violated"


# --------------------------------------------------------------- migration


class TestStoreMigration:
    _PR2_SCHEMA = """
    CREATE TABLE jobs (
        id            TEXT PRIMARY KEY,
        fingerprint   TEXT NOT NULL,
        system_name   TEXT NOT NULL,
        property_name TEXT NOT NULL,
        label         TEXT,
        status        TEXT NOT NULL CHECK (status IN ('queued', 'running', 'done', 'error')),
        error         TEXT,
        cache_hit     INTEGER NOT NULL DEFAULT 0,
        submitted_at  REAL NOT NULL,
        started_at    REAL,
        finished_at   REAL,
        system_json   TEXT NOT NULL,
        property_json TEXT NOT NULL,
        options_json  TEXT NOT NULL
    );
    CREATE INDEX jobs_by_status ON jobs (status, submitted_at);
    CREATE INDEX jobs_by_fingerprint ON jobs (fingerprint);
    CREATE TABLE results (
        fingerprint TEXT PRIMARY KEY,
        result_json TEXT NOT NULL,
        created_at  REAL NOT NULL
    );
    """

    def test_interrupted_migration_is_resumed_without_stranding_rows(self, tmp_path):
        """A crash between the rename and the copy must not lose jobs: the
        next open finds the leftover ``jobs_migrating`` table and resumes."""
        path = tmp_path / "crashed.db"
        connection = sqlite3.connect(path)
        with connection:
            # Simulate dying right after `ALTER TABLE jobs RENAME TO
            # jobs_migrating`: only the renamed PR 2 table exists.
            connection.executescript(
                self._PR2_SCHEMA.replace("TABLE jobs", "TABLE jobs_migrating", 1)
                .replace("INDEX jobs_by_status ON jobs ", "INDEX jobs_by_status ON jobs_migrating ")
                .replace("INDEX jobs_by_fingerprint ON jobs ", "INDEX jobs_by_fingerprint ON jobs_migrating ")
            )
            connection.execute(
                "INSERT INTO jobs_migrating (id, fingerprint, system_name,"
                " property_name, status, submitted_at, system_json, property_json,"
                " options_json)"
                " VALUES ('stranded', 'fp1', 'tiny', 'p', 'queued', 1.0, '{}', '{}', '{}')"
            )
        connection.close()

        store = JobStore(path)
        try:
            rescued = store.get_job("stranded")
            assert rescued is not None and rescued.status == "queued"
            with store._read() as connection:
                leftover = connection.execute(
                    "SELECT 1 FROM sqlite_master WHERE name = 'jobs_migrating'"
                ).fetchone()
            assert leftover is None
        finally:
            store.close()

    def test_pr2_store_is_migrated_in_place(self, tmp_path):
        path = tmp_path / "old.db"
        connection = sqlite3.connect(path)
        with connection:
            connection.executescript(self._PR2_SCHEMA)
            connection.execute(
                "INSERT INTO jobs (id, fingerprint, system_name, property_name,"
                " status, submitted_at, system_json, property_json, options_json)"
                " VALUES ('oldjob', 'fp1', 'tiny', 'p', 'queued', 1.0, '{}', '{}', '{}')"
            )
            connection.execute(
                "INSERT INTO results (fingerprint, result_json, created_at)"
                " VALUES ('fp2', '{}', 1.0)"
            )
        connection.close()

        store = JobStore(path)
        try:
            migrated = store.get_job("oldjob")
            assert migrated is not None and migrated.status == "queued"
            assert migrated.cancel_requested is False
            assert migrated.ttl_seconds is None and migrated.expires_at is None
            assert store.result_count() == 1
            # The rebuilt table accepts the new lifecycle state.
            assert store.request_cancel("oldjob") == ("cancelled", True)
            assert store.get_job("oldjob").status == "cancelled"
            assert store.counts()["cancelled"] == 1
        finally:
            store.close()
