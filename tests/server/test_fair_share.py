"""Weighted fair-share claiming (stride scheduling over ``claim_shares``).

Store-level tests pin the exact deterministic claim order; the e2e class
runs a claim storm through a live single-worker server (on the session's
worker model) and asserts the 1/2/4-weighted backlogs interleave
proportionally instead of draining FIFO.
"""

from __future__ import annotations

import time

import pytest

from repro.client import VerifasClient
from repro.core.options import VerifierOptions
from repro.core.stats import SearchStatistics
from repro.core.verifier import VerificationOutcome, VerificationResult
from repro.server import JobStore, PendingQuotaExceeded, VerificationServer
from repro.service import VerificationJob
from repro.spec import dump_property, dump_system
from repro.tenancy import TenantRegistry


def _distinct_jobs(system, count, start=0):
    """*count* jobs with globally distinct fingerprints (state budgets)."""
    from repro.has.conditions import Const, Eq, Var
    from repro.ltl import LTLFOProperty, parse_ltl

    prop = LTLFOProperty("Main", parse_ltl("F p"),
                         {"p": Eq(Var("status"), Const("picked"))}, name="f-picked")
    return [
        VerificationJob(
            system_dict=dump_system(system),
            property_dict=dump_property(prop),
            options_dict=VerifierOptions(max_states=1000 + start + i).as_dict(),
        )
        for i in range(count)
    ]


def _done(name="f-picked"):
    return VerificationResult(
        outcome=VerificationOutcome.SATISFIED, property_name=name, task="Main",
        stats=SearchStatistics(states_explored=1),
    ).as_dict()


@pytest.fixture
def store(tmp_path):
    store = JobStore(tmp_path / "jobs.db")
    yield store
    store.close()


@pytest.fixture
def registry(store):
    return TenantRegistry(store)


def _claim_order(store):
    """Tenant ids in the order claim_next hands out the whole backlog."""
    order = []
    while True:
        claimed = store.claim_next()
        if claimed is None:
            return order
        order.append(claimed.tenant_id)


class TestStrideClaiming:
    def test_weighted_shares_in_exact_stride_windows(self, store, registry, tiny_system):
        """Weights 1/2/4 with equal backlogs: every claim window matches the
        deterministic stride schedule, not submission (FIFO) order."""
        weights = {"a": 1.0, "b": 2.0, "c": 4.0}
        for name, weight in weights.items():
            registry.create(name, weight=weight, tenant_id=name)
        start = 0
        for name in ("a", "b", "c"):
            for job in _distinct_jobs(tiny_system, 28, start=start):
                store.submit(job, tenant_id=name)
                start += 1
        order = _claim_order(store)
        assert len(order) == 84
        first = order[:14]
        assert {t: first.count(t) for t in weights} == {"a": 2, "b": 4, "c": 8}
        # Once c's 28 jobs run dry (around claim 49) a and b keep splitting
        # 1:2 -- by claim 70, b is also done and only a remains.
        head = order[:70]
        assert {t: head.count(t) for t in weights} == {"a": 14, "b": 28, "c": 28}
        assert set(order[70:]) == {"a"}

    def test_low_weight_tenant_is_not_starved(self, store, registry, tiny_system):
        """A 100x weight gap slows the light tenant down; it never silences it."""
        registry.create("heavy", weight=100.0, tenant_id="heavy")
        registry.create("light", weight=1.0, tenant_id="light")
        for job in _distinct_jobs(tiny_system, 10):
            store.submit(job, tenant_id="heavy")
        for job in _distinct_jobs(tiny_system, 10, start=10):
            store.submit(job, tenant_id="light")
        order = _claim_order(store)
        assert "light" in order[:3]  # first light claim lands almost immediately
        assert order.count("light") == 10 and order.count("heavy") == 10

    def test_priority_orders_within_a_tenant(self, store, registry, tiny_system):
        registry.create("a", tenant_id="a")
        jobs = _distinct_jobs(tiny_system, 3)
        low = store.submit(jobs[0], tenant_id="a", priority=-1)
        base = store.submit(jobs[1], tenant_id="a")
        high = store.submit(jobs[2], tenant_id="a", priority=5)
        claimed = [store.claim_next().id for _ in range(3)]
        assert claimed == [high.id, base.id, low.id]

    def test_idle_rejoin_lift_prevents_monopoly(self, store, registry, tiny_system):
        """A tenant that sat idle while others burned vtime re-enters at the
        backlog's floor: it does not get its whole backlog claimed first."""
        registry.create("busy", tenant_id="busy")
        registry.create("idler", tenant_id="idler")
        for job in _distinct_jobs(tiny_system, 10):
            store.submit(job, tenant_id="busy")
        for _ in range(5):  # busy's vtime climbs to 5.0
            assert store.claim_next().tenant_id == "busy"
        for job in _distinct_jobs(tiny_system, 3, start=10):
            store.submit(job, tenant_id="idler")
        # Equal weights from a level start: strict alternation, not a run of
        # three idler claims (which vtime 0 would have produced).
        order = [store.claim_next().tenant_id for _ in range(6)]
        assert order == ["busy", "idler", "busy", "idler", "busy", "idler"]

    def test_anonymous_jobs_share_one_lane(self, store, registry, tiny_system):
        """Anonymous (tenant-less) submissions compete as one weight-1 tenant."""
        registry.create("t", weight=1.0, tenant_id="t")
        for job in _distinct_jobs(tiny_system, 4):
            store.submit(job)  # no tenant_id
        for job in _distinct_jobs(tiny_system, 4, start=4):
            store.submit(job, tenant_id="t")
        order = _claim_order(store)
        assert {order.count(None), order.count("t")} == {4}
        # Equal weights => alternation after the first two tie-broken claims.
        assert order[:4] == [None, "t", None, "t"]


class TestPendingQuota:
    def test_quota_is_enforced_in_the_submit_transaction(self, store, tiny_system):
        jobs = _distinct_jobs(tiny_system, 4)
        store.submit(jobs[0], tenant_id="t", pending_limit=2)
        store.submit(jobs[1], tenant_id="t", pending_limit=2)
        with pytest.raises(PendingQuotaExceeded) as excinfo:
            store.submit(jobs[2], tenant_id="t", pending_limit=2)
        assert excinfo.value.pending == 2 and excinfo.value.limit == 2
        # running jobs still count against the quota ...
        assert store.claim_next() is not None
        with pytest.raises(PendingQuotaExceeded):
            store.submit(jobs[2], tenant_id="t", pending_limit=2)
        # ... finished ones do not.
        running = store.list_jobs(status="running", tenant_id="t")[0]
        store.mark_done(running.id, _done())
        store.submit(jobs[2], tenant_id="t", pending_limit=2)
        assert store.pending_count("t") == 2

    def test_quota_is_per_tenant(self, store, tiny_system):
        jobs = _distinct_jobs(tiny_system, 3)
        store.submit(jobs[0], tenant_id="a", pending_limit=1)
        with pytest.raises(PendingQuotaExceeded):
            store.submit(jobs[1], tenant_id="a", pending_limit=1)
        store.submit(jobs[2], tenant_id="b", pending_limit=1)  # b unaffected


class TestTenantScopedReads:
    def test_list_counts_and_tenant_job_counts(self, store, tiny_system):
        jobs = _distinct_jobs(tiny_system, 5)
        for job in jobs[:2]:
            store.submit(job, tenant_id="a")
        for job in jobs[2:4]:
            store.submit(job, tenant_id="b")
        store.submit(jobs[4])  # anonymous
        assert {j.tenant_id for j in store.list_jobs()} == {"a", "b", None}
        assert [j.tenant_id for j in store.list_jobs(tenant_id="a")] == ["a", "a"]
        assert store.counts(tenant_id="a")["queued"] == 2
        assert store.counts()["queued"] == 5
        per_tenant = store.tenant_job_counts()
        assert per_tenant["a"]["queued"] == 2
        assert per_tenant[""]["queued"] == 1  # '' = anonymous


# --------------------------------------------------------------------- e2e


class TestFairShareE2E:
    """A claim storm through a live server: one worker, three tenants."""

    @pytest.fixture
    def server(self, tmp_path, worker_model):
        server = VerificationServer(
            store_path=tmp_path / "jobs.db", port=0, workers=1,
            sweep_interval=0.2, worker_model=worker_model, auth_enabled=True,
        )
        server.start()
        yield server
        server.stop()

    def test_claim_storm_interleaves_by_weight(
        self, server, tiny_system, exploding_system
    ):
        keys = {}
        for name, weight in (("a", 1.0), ("b", 2.0), ("c", 4.0)):
            _, keys[name] = server.tenants.create(name, weight=weight, tenant_id=name)
        _, blocker_key = server.tenants.create("blocker", tenant_id="blocker")

        from repro.has.conditions import Const, Eq, Var
        from repro.ltl import LTLFOProperty, parse_ltl

        blocking = VerifasClient(server.url, api_key=blocker_key,
                                 poll_initial=0.02, poll_max=0.2)
        prop = LTLFOProperty(
            "Main", parse_ltl("G p"),
            {"p": Eq(Var("v0"), Const("c0"))}, name="blocker",
        )
        # Occupy the single worker so the whole backlog queues up before any
        # fair-share claim happens -- the claim order is then deterministic.
        blocker = blocking.submit(
            dump_system(exploding_system), [dump_property(prop)],
            options={"timeout_seconds": 120},
        )[0]
        deadline = time.monotonic() + 30
        while blocking.job(blocker.id)["status"] != "running":
            assert time.monotonic() < deadline, "blocker never started"
            time.sleep(0.05)

        submitted = {}
        start = 0
        for name in ("a", "b", "c"):
            client = VerifasClient(server.url, api_key=keys[name],
                                   poll_initial=0.02, poll_max=0.2)
            handles = []
            for job in _distinct_jobs(tiny_system, 7, start=start):
                handles.extend(client.submit_payload({
                    "schema_version": 1,
                    "system": job.system_dict,
                    "properties": [job.property_dict],
                    "options": job.options_dict,
                }))
                start += 1
            submitted[name] = [h.id for h in handles]
        blocking.cancel(blocker.id)

        all_ids = [job_id for ids in submitted.values() for job_id in ids]
        views = {}
        for name in ("a", "b", "c"):
            client = VerifasClient(server.url, api_key=keys[name],
                                   poll_initial=0.02, poll_max=0.2)
            views.update(client.wait_all(submitted[name], deadline_seconds=120))
        assert len(views) == len(all_ids) == 21
        assert all(v["status"] == "done" for v in views.values())

        # Reconstruct the claim order from the store's started_at stamps:
        # one worker claims strictly sequentially.
        jobs = server.store.get_jobs(all_ids)
        order = [
            j.tenant_id for j in sorted(jobs, key=lambda j: j.started_at)
        ]
        first = order[:7]
        counts = {t: first.count(t) for t in ("a", "b", "c")}
        # The exact stride window: weights 1/2/4 over the first 7 claims.
        assert counts == {"a": 1, "b": 2, "c": 4}
        # Starvation regression: the weight-1 tenant is served in-window.
        assert "a" in first

    def test_fifo_regression_anonymous_single_tenant(
        self, tmp_path, worker_model, tiny_system
    ):
        """With no tenants in play, claims still drain in submit order."""
        server = VerificationServer(
            store_path=tmp_path / "anon.db", port=0, workers=0,
            worker_model=worker_model,
        )
        server.start()
        try:
            client = VerifasClient(server.url, poll_initial=0.02, poll_max=0.2)
            ids = []
            for job in _distinct_jobs(tiny_system, 3):
                handle = client.submit_payload({
                    "schema_version": 1,
                    "system": job.system_dict,
                    "properties": [job.property_dict],
                    "options": job.options_dict,
                })[0]
                ids.append(handle.id)
            claimed = [server.store.claim_next().id for _ in range(3)]
            assert claimed == ids
        finally:
            server.stop()
