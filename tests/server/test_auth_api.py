"""E2e tests of the multi-tenant front door (``serve --auth``).

Covers the acceptance criteria: 401 for unauthenticated requests, tenant
isolation (A cannot list/inspect/cancel B's jobs -- including across two
servers sharing one store), 429 + ``Retry-After`` past the rate limit and
the in-flight quota, per-tenant metrics, the ``REPRO_TEST_AUTH=1``
bootstrap, and that an auth-less server keeps behaving exactly as before.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.client import AsyncVerifasClient, ClientError, VerifasClient
from repro.core.options import VerifierOptions
from repro.has.conditions import Const, Eq, Var
from repro.ltl import LTLFOProperty, parse_ltl
from repro.server import VerificationServer
from repro.spec import dump_property, dump_system
from repro.tenancy import DEFAULT_TEST_API_KEY


def _payload(system, index=0):
    prop = LTLFOProperty("Main", parse_ltl("F p"),
                         {"p": Eq(Var("status"), Const("picked"))}, name="f-picked")
    return {
        "schema_version": 1,
        "system": dump_system(system),
        "properties": [dump_property(prop)],
        "options": VerifierOptions(max_states=2000 + index).as_dict(),
    }


def _raw(url: str, method: str = "GET", payload=None, api_key=None):
    """(status, headers, parsed body); HTTP errors return, not raise."""
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    headers = {"Content-Type": "application/json"}
    if api_key:
        headers["Authorization"] = f"Bearer {api_key}"
    request = urllib.request.Request(url, data=data, method=method, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.load(response)
    except urllib.error.HTTPError as error:
        try:
            body = json.loads(error.read().decode("utf-8"))
        except ValueError:
            body = {}
        return error.code, dict(error.headers), body


@pytest.fixture
def auth_server(tmp_path, worker_model):
    server = VerificationServer(
        store_path=tmp_path / "jobs.db", port=0, workers=1,
        sweep_interval=0.2, worker_model=worker_model, auth_enabled=True,
    )
    server.start()
    yield server
    server.stop()


@pytest.fixture
def tenants(auth_server):
    """Two plain tenants; returns ``{name: api_key}``."""
    keys = {}
    for name in ("alice", "bob"):
        _, keys[name] = auth_server.tenants.create(name, tenant_id=name)
    return keys


class TestAuthentication:
    def test_job_routes_401_without_key(self, auth_server):
        base = auth_server.url
        for method, path in [
            ("GET", "/v1/jobs"),
            ("GET", "/v1/jobs/x"),
            ("GET", "/v1/jobs/x/events"),
            ("GET", "/v1/jobs/x/trace"),
            ("DELETE", "/v1/jobs/x"),
            ("POST", "/v1/jobs"),
        ]:
            payload = {"schema_version": 1} if method == "POST" else None
            status, headers, body = _raw(base + path, method, payload)
            assert status == 401, f"{method} {path} answered {status}"
            assert headers.get("WWW-Authenticate") == "Bearer"
            assert "error" in body

    @pytest.mark.parametrize(
        "bad_key", ["vk_ffffffff.not-a-secret", "garbage", "vk_nodot"]
    )
    def test_unknown_or_malformed_keys_401(self, auth_server, bad_key):
        status, _, _ = _raw(auth_server.url + "/v1/jobs", api_key=bad_key)
        assert status == 401

    def test_wrong_secret_with_known_key_id_401(self, auth_server, tenants):
        key_id = auth_server.tenants.get("alice").key_id
        status, _, _ = _raw(
            auth_server.url + "/v1/jobs", api_key=f"vk_{key_id}.wrong"
        )
        assert status == 401

    def test_revoked_key_403(self, auth_server, tenants):
        auth_server.tenants.revoke("bob")
        status, headers, _ = _raw(
            auth_server.url + "/v1/jobs", api_key=tenants["bob"]
        )
        assert status == 403
        assert "WWW-Authenticate" not in headers  # the key IS known

    def test_probes_and_metrics_stay_open(self, auth_server):
        for path in ("/v1/healthz", "/v1/readyz", "/v1/metrics"):
            status, _, _ = _raw(auth_server.url + path)
            assert status in (200, 503), f"{path} answered {status}"

    def test_auth_failures_are_counted(self, auth_server):
        before = auth_server.metrics.counters()["auth_failures"]
        _raw(auth_server.url + "/v1/jobs")
        _raw(auth_server.url + "/v1/jobs", api_key="vk_ffffffff.x")
        after = auth_server.metrics.counters()["auth_failures"]
        assert after == before + 2


class TestTenantIsolation:
    def test_cross_tenant_access_is_404(self, auth_server, tenants, tiny_system):
        alice = VerifasClient(auth_server.url, api_key=tenants["alice"],
                              poll_initial=0.02, poll_max=0.2)
        job_id = alice.submit_payload(_payload(tiny_system))[0].id
        base = auth_server.url
        for method, path in [
            ("GET", f"/v1/jobs/{job_id}"),
            ("GET", f"/v1/jobs/{job_id}/events"),
            ("GET", f"/v1/jobs/{job_id}/trace"),
            ("DELETE", f"/v1/jobs/{job_id}"),
        ]:
            status, _, _ = _raw(base + path, method, api_key=tenants["bob"])
            assert status == 404, f"bob's {method} {path} answered {status}"
        # The owner still sees everything.
        assert alice.job(job_id)["id"] == job_id
        assert alice.wait(job_id, deadline_seconds=60)["status"] == "done"

    def test_listing_is_scoped_to_the_caller(self, auth_server, tenants, tiny_system):
        alice = VerifasClient(auth_server.url, api_key=tenants["alice"],
                              poll_initial=0.02, poll_max=0.2)
        bob = VerifasClient(auth_server.url, api_key=tenants["bob"],
                            poll_initial=0.02, poll_max=0.2)
        alice_id = alice.submit_payload(_payload(tiny_system, 1))[0].id
        bob_id = bob.submit_payload(_payload(tiny_system, 2))[0].id
        alice_view = alice.jobs()
        assert [j["id"] for j in alice_view["jobs"]] == [alice_id]
        assert sum(alice_view["counts"].values()) == 1
        # Batch-status ids filter: bob's ids silently drop out for alice.
        views = alice.job_views([alice_id, bob_id])
        assert set(views) == {alice_id}

    def test_isolation_holds_across_two_servers_sharing_a_store(
        self, tmp_path, tenants, auth_server, tiny_system
    ):
        """A second server on the same store enforces the same tenancy:
        keys minted on server one authenticate on server two, and scoping
        still holds there."""
        second = VerificationServer(
            store_path=auth_server.store.path, port=0, workers=0,
            server_id="second", auth_enabled=True, tenant_cache_seconds=0.05,
        )
        second.start()
        try:
            alice_one = VerifasClient(auth_server.url, api_key=tenants["alice"],
                                      poll_initial=0.02, poll_max=0.2)
            job_id = alice_one.submit_payload(_payload(tiny_system, 3))[0].id
            # Same key, other server: authenticated and scoped.
            status, _, body = _raw(second.url + "/v1/jobs",
                                   api_key=tenants["alice"])
            assert status == 200
            assert job_id in [j["id"] for j in body["jobs"]]
            status, _, _ = _raw(second.url + f"/v1/jobs/{job_id}",
                                api_key=tenants["bob"])
            assert status == 404
            status, _, _ = _raw(second.url + f"/v1/jobs/{job_id}",
                                api_key=tenants["alice"])
            assert status == 200
            # Revocation on server one reaches server two after its TTL.
            auth_server.tenants.revoke("alice")
            time.sleep(0.1)
            status, _, _ = _raw(second.url + "/v1/jobs",
                                api_key=tenants["alice"])
            assert status == 403
        finally:
            second.stop()


class TestRateLimitAndQuota:
    def test_over_rate_limit_is_429_with_retry_after(self, auth_server, tiny_system):
        _, key = auth_server.tenants.create("limited", rate_limit=1.0, burst=2.0)
        base = auth_server.url
        for index in range(2):  # the burst
            status, _, _ = _raw(base + "/v1/jobs", "POST",
                                _payload(tiny_system, 10 + index), api_key=key)
            assert status == 202
        status, headers, body = _raw(base + "/v1/jobs", "POST",
                                     _payload(tiny_system, 12), api_key=key)
        assert status == 429
        assert int(headers["Retry-After"]) >= 1
        assert body["reason"] == "rate_limit"
        assert 0 < body["retry_after"] <= 2.0
        view = auth_server.metrics_view()
        assert view["counters"]["tenant_throttled"] >= 1

    def test_batch_bigger_than_pending_quota_is_429(self, tmp_path):
        server = VerificationServer(
            store_path=tmp_path / "q.db", port=0, workers=0, auth_enabled=True,
        )
        server.start()
        try:
            _, key = server.tenants.create("small", max_pending=2)
            from repro.has.builder import ArtifactSystemBuilder
            from repro.has.conditions import And, NULL, Neq
            from repro.has.schema import DatabaseSchema

            schema = DatabaseSchema.from_dict({"ITEMS": {"price": None}})
            builder = ArtifactSystemBuilder("tiny", schema)
            task = builder.task("Main")
            task.id_variable("item", "ITEMS")
            task.variable("status")
            task.internal_service(
                "pick", pre=Eq(Var("status"), NULL),
                post=And(Neq(Var("item"), NULL), Eq(Var("status"), Const("picked"))),
            )
            system = builder.build()
            base = server.url
            status, _, _ = _raw(base + "/v1/jobs", "POST",
                                _payload(system, 20), api_key=key)
            assert status == 202
            status, _, _ = _raw(base + "/v1/jobs", "POST",
                                _payload(system, 21), api_key=key)
            assert status == 202
            # Workers are off: both jobs sit queued, the quota is full.
            status, headers, body = _raw(base + "/v1/jobs", "POST",
                                         _payload(system, 22), api_key=key)
            assert status == 429
            assert body["reason"] == "quota"
            assert "Retry-After" in headers
            assert server.metrics_view()["counters"]["quota_exceeded"] >= 1
        finally:
            server.stop()

    def test_sync_client_honours_retry_after(self, auth_server, tiny_system):
        _, key = auth_server.tenants.create("patient", rate_limit=5.0, burst=1.0)
        client = VerifasClient(auth_server.url, api_key=key,
                               poll_initial=0.02, poll_max=0.2)
        started = time.monotonic()
        ids = [client.submit_payload(_payload(tiny_system, 30 + i))[0].id
               for i in range(3)]
        elapsed = time.monotonic() - started
        assert len(ids) == 3
        assert elapsed >= 0.3  # two 429 retries at 5/s were actually waited out
        views = client.wait_all(ids, deadline_seconds=60)
        assert all(v["status"] == "done" for v in views.values())

    def test_sync_client_surfaces_429_when_not_retrying(self, auth_server, tiny_system):
        _, key = auth_server.tenants.create("impatient", rate_limit=0.5, burst=1.0)
        client = VerifasClient(auth_server.url, api_key=key, retry_throttled=False)
        client.submit_payload(_payload(tiny_system, 40))
        with pytest.raises(ClientError) as excinfo:
            client.submit_payload(_payload(tiny_system, 41))
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after and excinfo.value.retry_after > 0
        assert excinfo.value.body["reason"] == "rate_limit"

    def test_async_client_auth_and_retry(self, auth_server, tiny_system):
        import asyncio

        _, key = auth_server.tenants.create("async", rate_limit=5.0, burst=1.0)

        async def run():
            client = AsyncVerifasClient(auth_server.url, api_key=key)
            handles = []
            for i in range(2):  # the second submit rides a Retry-After wait
                handles.extend(await client.submit_payload(_payload(tiny_system, 50 + i)))
            views = await client.wait_all([h.id for h in handles],
                                          deadline_seconds=60)
            assert all(v["status"] == "done" for v in views.values())
            bad = AsyncVerifasClient(auth_server.url, api_key="vk_ffffffff.x")
            with pytest.raises(ClientError) as excinfo:
                await bad.jobs()
            assert excinfo.value.status == 401

        asyncio.run(run())


class TestPerTenantMetrics:
    def test_metrics_view_has_tenant_section(self, auth_server, tenants, tiny_system):
        alice = VerifasClient(auth_server.url, api_key=tenants["alice"],
                              poll_initial=0.02, poll_max=0.2)
        job_id = alice.submit_payload(_payload(tiny_system, 60))[0].id
        alice.wait(job_id, deadline_seconds=60)
        view = auth_server.metrics_view()
        assert view["auth_enabled"] is True
        tenant_view = view["tenants"]["alice"]
        assert tenant_view["name"] == "alice"
        assert tenant_view["jobs"]["done"] >= 1
        status, _, body = _raw(auth_server.url + "/v1/metrics")
        assert status == 200 and "alice" in body.get("tenants", {})


class TestTestAuthBootstrap:
    def test_repro_test_auth_provisions_the_test_tenant(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_AUTH", "1")
        server = VerificationServer(store_path=tmp_path / "t.db", port=0, workers=0)
        server.start()
        try:
            assert server.auth_enabled
            status, _, _ = _raw(server.url + "/v1/jobs")
            assert status == 401
            status, _, _ = _raw(server.url + "/v1/jobs",
                                api_key=DEFAULT_TEST_API_KEY)
            assert status == 200
            # The default-constructed client picks the key up from the env.
            client = VerifasClient(server.url)
            assert client.api_key == DEFAULT_TEST_API_KEY
            assert "counts" in client.jobs()
        finally:
            server.stop()


class TestAuthDisabled:
    def test_anonymous_server_ignores_authorization_headers(
        self, tmp_path, tiny_system, monkeypatch
    ):
        monkeypatch.delenv("REPRO_TEST_AUTH", raising=False)
        server = VerificationServer(store_path=tmp_path / "a.db", port=0, workers=0)
        server.start()
        try:
            assert not server.auth_enabled
            status, _, _ = _raw(server.url + "/v1/jobs")
            assert status == 200
            # A stray key is harmless, not a 401.
            status, _, _ = _raw(server.url + "/v1/jobs", api_key="vk_any.thing")
            assert status == 200
            status, _, body = _raw(server.url + "/v1/jobs", "POST",
                                   _payload(tiny_system, 70))
            assert status == 202
            assert "tenant_id" not in body["jobs"][0]
            view = server.metrics_view()
            assert "auth_enabled" not in view and "tenants" not in view
        finally:
            server.stop()
