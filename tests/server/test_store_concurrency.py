"""Multi-process claim-storm stress test of the shared WAL store.

Acceptance for the shared-store rework: N *processes* hammering
``claim_next`` / ``heartbeat`` / ``mark_done`` on one WAL store file must
never double-claim a job, never lose one, and never deadlock on
``SQLITE_BUSY`` -- each worker process opens its own :class:`JobStore`
(its own connection pool), exactly as separate ``python -m repro serve``
processes would.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.server import JobStore
from repro.server.workers import START_METHOD, probe_process_support
from repro.service import VerificationJob

#: Storm shape: enough jobs and processes for real interleaving, small
#: enough for tier-1 (the whole storm is sub-second once spawned).
JOBS = 36
WORKERS = 4


def _seed_jobs(path, count: int):
    """Submit *count* queued jobs with distinct fingerprints; returns ids."""
    store = JobStore(path)
    try:
        return [
            store.submit(
                VerificationJob(
                    system_dict={"name": "storm"},
                    property_dict={"name": f"p{index}"},
                    options_dict={"max_states": 1000 + index},
                )
            ).id
            for index in range(count)
        ]
    finally:
        store.close()


def _storm_worker(path: str, worker_id: str, results) -> None:
    """Child-process entry point: claim-heartbeat-finish until the queue drains.

    Module-level so it is picklable by reference under ``spawn``.  Any
    assertion failure surfaces as a nonzero child exit code.
    """
    store = JobStore(path)
    claimed = []
    try:
        while True:
            stored = store.claim_next(worker_id=worker_id)
            if stored is None:
                counts = store.counts()
                if counts["queued"] == 0 and counts["running"] == 0:
                    break
                time.sleep(0.002)  # another process is mid-job; re-check
                continue
            assert stored.claimed_by == worker_id
            # The owner's heartbeat must land while the claim is live...
            assert store.heartbeat(stored.id, worker_id) is True
            # ... and exactly one finisher lands the terminal mark.
            assert store.mark_done(
                stored.id,
                {"outcome": "satisfied", "worker": worker_id},
                worker_id=worker_id,
            ) is True
            claimed.append(stored.id)
    finally:
        store.close()
    results.put((worker_id, claimed))


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestMultiProcessClaimStorm:
    def test_no_double_claims_no_lost_jobs_no_deadlock(self, tmp_path):
        error = probe_process_support()
        if error is not None:  # pragma: no cover - sandbox guard
            pytest.skip(f"cannot spawn processes here: {error}")

        path = str(tmp_path / "storm.db")
        job_ids = _seed_jobs(path, JOBS)

        context = multiprocessing.get_context(START_METHOD)
        results = context.Queue()
        workers = [
            context.Process(
                target=_storm_worker,
                args=(path, f"storm-{index}:proc-0", results),
                daemon=True,
            )
            for index in range(WORKERS)
        ]
        for worker in workers:
            worker.start()

        # Drain the queue BEFORE joining: a child blocks flushing its result
        # if the queue pipe fills, so join-first can deadlock spuriously.
        per_worker = {}
        deadline = time.monotonic() + 120.0
        while len(per_worker) < WORKERS:
            remaining = deadline - time.monotonic()
            assert remaining > 0, (
                f"claim storm wedged: {len(per_worker)}/{WORKERS} workers reported"
            )
            try:
                worker_id, claimed = results.get(timeout=remaining)
            except Exception:  # pragma: no cover - queue.Empty on timeout
                continue
            per_worker[worker_id] = claimed
        for worker in workers:
            worker.join(timeout=30)
            assert worker.exitcode == 0, f"storm worker died with {worker.exitcode}"

        all_claims = [job_id for claims in per_worker.values() for job_id in claims]
        # Every job claimed exactly once across all processes: no double
        # claims (no duplicates) and no lost jobs (nothing missing).
        assert sorted(all_claims) == sorted(job_ids)

        # And the store agrees: everything finished exactly once.
        store = JobStore(path)
        try:
            counts = store.counts()
            assert counts["done"] == JOBS
            assert counts["queued"] == counts["running"] == 0
        finally:
            store.close()
