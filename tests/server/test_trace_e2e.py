"""End-to-end tests of distributed tracing across the server stack.

The acceptance path: a client submit carries a ``traceparent``, the HTTP
handler opens a server span, the trace context rides the job row through
the queue (and the worker pipe in the process model), the search emits
per-phase spans, and ``GET /v1/jobs/<id>/trace`` returns one coherent tree
renderable by ``python -m repro trace``.  Edge cases: malformed headers
start a fresh root (never a 500), cancelled and SIGKILL'd jobs close their
execution span with an error status, and a shared-store deployment stitches
spans from two servers into a single trace.
"""

from __future__ import annotations

import json
import os
import signal
import time
import urllib.request

import pytest

from repro.client import VerifasClient, auth_headers
from repro.has.conditions import Const, Eq, Neq, Var
from repro.ltl import LTLFOProperty, parse_ltl
from repro.obs import format_traceparent, new_span_id, new_trace_id, render_trace
from repro.server import VerificationServer
from repro.spec import dump_property, dump_system

OPTIONS = {"timeout_seconds": 60}


def _property():
    return LTLFOProperty(
        "Main", parse_ltl("F p"),
        {"p": Eq(Var("status"), Const("picked"))}, name="eventually-picked",
    )


def _exploding_property(index: int = 0):
    return LTLFOProperty(
        "Main",
        parse_ltl("G !(p & q)"),
        {"p": Eq(Var("v0"), Const("c0")), "q": Eq(Var("v0"), Const("c1"))},
        name=f"consistent-{index}",
    )


def _wait_until(predicate, deadline_seconds: float = 30.0, message: str = "condition"):
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


def _wait_for_progress(client: VerifasClient, job_id: str) -> None:
    _wait_until(lambda: client.job(job_id)["status"] == "running",
                message="job to start running")
    _wait_until(
        lambda: any(e["kind"] == "progress" for e in client.events(job_id)["events"]),
        message="search progress",
    )


def _span_names(view) -> list:
    return [s["name"] for s in view["spans"]]


@pytest.fixture
def traced_server(tmp_path, worker_model):
    server = VerificationServer(
        store_path=tmp_path / "jobs.db", port=0, workers=1,
        sweep_interval=0.1, progress_interval=25, worker_model=worker_model,
        trace_enabled=True,
    )
    server.start()
    yield server
    server.stop()


@pytest.fixture
def client(traced_server):
    return VerifasClient(traced_server.url, poll_initial=0.02, poll_max=0.2)


class TestTracedJobLifecycle:
    def test_one_trace_from_client_submit_to_search_phases(
        self, client, tiny_system
    ):
        """The headline acceptance criterion: a single trace covering the
        client submit, HTTP handling, queue wait, worker execution and at
        least three distinct core search phases."""
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_property())], options=OPTIONS
        )[0]
        assert handle.trace_id is not None  # surfaced at accept time
        client.wait(handle.id, deadline_seconds=60)

        view = client.trace(handle.id)
        assert view["trace_id"] == handle.trace_id
        names = _span_names(view)
        assert "http.submit" in names
        assert "queue.wait" in names
        assert "worker.execute" in names
        search_phases = {"verify.setup", "verify.search", "verify.verdict"}
        assert search_phases <= set(names)
        # One trace: every span carries the job's trace id.
        assert {s["trace_id"] for s in view["spans"]} == {handle.trace_id}

        # The tree is rooted at the client's (unrecorded) span and nests
        # execution under the submit span.
        assert len(view["tree"]) == 1
        root = view["tree"][0]
        assert root["span"]["name"] == "client (remote)"
        submit_node = root["children"][0]
        assert submit_node["span"]["name"] == "http.submit"
        child_names = {c["span"]["name"] for c in submit_node["children"]}
        assert {"queue.wait", "worker.execute"} <= child_names

        # The search span carries the hot-loop phase aggregates.
        search = next(s for s in view["spans"] if s["name"] == "verify.search")
        assert "successor-generation" in search["attrs"]["phases"]

        # And the whole thing renders as a waterfall.
        text = render_trace(view)
        assert "worker.execute" in text and "· successor-generation" in text

    def test_queue_wait_span_spans_submit_to_claim(self, client, tiny_system):
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_property())], options=OPTIONS
        )[0]
        client.wait(handle.id, deadline_seconds=60)
        view = client.trace(handle.id)
        wait = next(s for s in view["spans"] if s["name"] == "queue.wait")
        execute = next(s for s in view["spans"] if s["name"] == "worker.execute")
        assert wait["duration"] >= 0.0
        assert execute["start_time"] >= wait["start_time"]
        # Both hang off the handler's submit span.
        submit = next(s for s in view["spans"] if s["name"] == "http.submit")
        assert wait["parent_id"] == submit["span_id"]
        assert execute["parent_id"] == submit["span_id"]

    def test_job_view_carries_the_trace_id(self, client, tiny_system):
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_property())], options=OPTIONS
        )[0]
        assert client.job(handle.id)["trace_id"] == handle.trace_id

    def test_trace_of_unknown_job_is_404(self, client):
        from repro.client import ClientError
        with pytest.raises(ClientError) as excinfo:
            client.trace("no-such-job")
        assert excinfo.value.status == 404


class TestTraceparentEdgeCases:
    def _raw_submit(self, server, tiny_system, traceparent=None):
        payload = {
            "system": dump_system(tiny_system),
            "properties": [dump_property(_property())],
            "options": OPTIONS,
        }
        headers = {"Content-Type": "application/json", **auth_headers()}
        if traceparent is not None:
            headers["traceparent"] = traceparent
        request = urllib.request.Request(
            f"{server.url}/v1/jobs", data=json.dumps(payload).encode("utf-8"),
            method="POST", headers=headers,
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response)

    def test_missing_traceparent_starts_a_fresh_root(
        self, traced_server, tiny_system
    ):
        status, body = self._raw_submit(traced_server, tiny_system)
        assert status == 202
        job = body["jobs"][0]
        assert job["trace_id"]  # server minted one
        client = VerifasClient(traced_server.url, poll_initial=0.02)
        client.wait(job["id"], deadline_seconds=60)
        view = client.trace(job["id"])
        assert "worker.execute" in _span_names(view)
        # With no client context the handler's span IS the root.
        submit = next(s for s in view["spans"] if s["name"] == "http.submit")
        assert submit["parent_id"] is None

    @pytest.mark.parametrize("header", [
        "not-a-traceparent",
        "00-zzzz-yyyy-01",
        "00-" + "0" * 32 + "-" + "0" * 16 + "-01",  # all-zero: invalid per spec
    ])
    def test_malformed_traceparent_is_accepted_never_500(
        self, traced_server, tiny_system, header
    ):
        status, body = self._raw_submit(traced_server, tiny_system, traceparent=header)
        assert status == 202
        trace_id = body["jobs"][0]["trace_id"]
        assert trace_id is not None
        assert trace_id != "0" * 32  # a fresh root, not the invalid input

    def test_wellformed_traceparent_joins_the_client_trace(
        self, traced_server, tiny_system
    ):
        trace_id, span_id = new_trace_id(), new_span_id()
        status, body = self._raw_submit(
            traced_server, tiny_system,
            traceparent=format_traceparent(trace_id, span_id),
        )
        assert status == 202
        assert body["jobs"][0]["trace_id"] == trace_id

    def test_untraced_server_still_correlates_but_records_no_spans(
        self, tmp_path, worker_model, tiny_system
    ):
        server = VerificationServer(
            store_path=tmp_path / "jobs.db", port=0, workers=1,
            worker_model=worker_model, trace_enabled=False,
        )
        server.start()
        try:
            client = VerifasClient(server.url, poll_initial=0.02)
            handle = client.submit(
                dump_system(tiny_system), [dump_property(_property())],
                options=OPTIONS,
            )[0]
            # The client's trace id is stamped for log correlation...
            assert handle.trace_id is not None
            client.wait(handle.id, deadline_seconds=60)
            # ...but no spans are recorded, and /trace still answers 200.
            view = client.trace(handle.id)
            assert view["spans"] == [] and view["tree"] == []
        finally:
            server.stop()

    def test_client_can_opt_out_of_trace_propagation(
        self, traced_server, tiny_system
    ):
        client = VerifasClient(
            traced_server.url, poll_initial=0.02, trace_submissions=False
        )
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_property())], options=OPTIONS
        )[0]
        # The traced server still mints a server-side root trace.
        assert handle.trace_id is not None
        client.wait(handle.id, deadline_seconds=60)
        assert "worker.execute" in _span_names(client.trace(handle.id))


class TestFailureSpans:
    def test_cancelled_job_closes_its_execution_span_with_error(
        self, tmp_path, worker_model, exploding_system
    ):
        server = VerificationServer(
            store_path=tmp_path / "jobs.db", port=0, workers=1,
            sweep_interval=0.1, progress_interval=25, worker_model=worker_model,
            trace_enabled=True,
        )
        server.start()
        try:
            client = VerifasClient(server.url, poll_initial=0.02)
            handle = client.submit(
                dump_system(exploding_system),
                [dump_property(_exploding_property())],
                options={"max_states": 500_000},
            )[0]
            _wait_for_progress(client, handle.id)
            client.cancel(handle.id)
            view = client.wait(handle.id, deadline_seconds=30)
            assert view["status"] == "cancelled"

            trace = client.trace(handle.id)
            execute = next(
                s for s in trace["spans"] if s["name"] == "worker.execute"
            )
            assert execute["status"] == "error"
            assert execute["attrs"]["reason"] == "cancelled"
            assert execute["duration"] > 0.0  # closed, not dangling
        finally:
            server.stop()

    @pytest.mark.skipif(
        os.environ.get("REPRO_TEST_WORKER_MODEL") == "thread",
        reason="process worker model explicitly disabled for this run",
    )
    def test_sigkilled_worker_closes_the_span_as_worker_crashed(
        self, tmp_path, exploding_system
    ):
        server = VerificationServer(
            store_path=tmp_path / "jobs.db", port=0, workers=1,
            sweep_interval=0.1, progress_interval=25, worker_model="process",
            trace_enabled=True,
        )
        server.start()
        if server.worker_model != "process":  # pragma: no cover - sandbox guard
            server.stop()
            pytest.skip(f"no process support here: {server.worker_fallback_error}")
        try:
            client = VerifasClient(server.url, poll_initial=0.02)
            handle = client.submit(
                dump_system(exploding_system),
                [dump_property(_exploding_property())],
                options={"max_states": 500_000, "timeout_seconds": 3},
            )[0]
            _wait_for_progress(client, handle.id)
            victim_pid = server.metrics_view()["workers"]["pool"][0]["pid"]
            os.kill(victim_pid, signal.SIGKILL)

            # The job re-runs on a respawned child and completes; the
            # *first* execution's span was closed by the agent with the
            # crash disposition (the child could not have done it).
            client.wait(handle.id, deadline_seconds=60)
            trace = client.trace(handle.id)
            executions = [
                s for s in trace["spans"] if s["name"] == "worker.execute"
            ]
            assert len(executions) == 2  # crashed attempt + successful re-run
            crashed = [s for s in executions if s["status"] == "error"]
            assert len(crashed) == 1
            assert crashed[0]["attrs"]["reason"] == "worker-crashed"
        finally:
            server.stop()


class TestCrossServerTrace:
    def test_shared_store_spans_stitch_into_one_trace(
        self, tmp_path, worker_model, tiny_system
    ):
        """Submit on an API-only server, execute on a peer with workers: the
        /trace view on *either* server shows the whole story, because spans
        key on the trace id persisted with the job row."""
        store_path = tmp_path / "shared.db"
        frontend = VerificationServer(
            store_path=store_path, port=0, workers=0, server_id="front",
            sweep_interval=0.1, trace_enabled=True,
        )
        frontend.start()
        backend = VerificationServer(
            store_path=store_path, port=0, workers=1, server_id="back",
            sweep_interval=0.1, progress_interval=25, worker_model=worker_model,
            trace_enabled=True,
        )
        backend.start()
        try:
            submit_client = VerifasClient(frontend.url, poll_initial=0.02)
            handle = submit_client.submit(
                dump_system(tiny_system), [dump_property(_property())],
                options=OPTIONS,
            )[0]
            submit_client.wait(handle.id, deadline_seconds=60)

            for url in (frontend.url, backend.url):
                view = VerifasClient(url).trace(handle.id)
                names = _span_names(view)
                assert "http.submit" in names       # recorded by the frontend
                assert "worker.execute" in names    # recorded by the backend
                assert "verify.search" in names
                assert {s["trace_id"] for s in view["spans"]} == {handle.trace_id}
                execute = next(
                    s for s in view["spans"] if s["name"] == "worker.execute"
                )
                assert execute["attrs"]["worker_id"].startswith("back:")
        finally:
            backend.stop()
            frontend.stop()
