"""End-to-end tests of the operability surface: /healthz, /readyz, and the
Prometheus text exposition of /metrics (content negotiation included)."""

from __future__ import annotations

import urllib.error
import urllib.request

import pytest

from repro.client import VerifasClient, auth_headers
from repro.has.conditions import Const, Eq, Var
from repro.ltl import LTLFOProperty, parse_ltl
from repro.server import VerificationServer
from repro.spec import dump_property, dump_system

OPTIONS = {"timeout_seconds": 60}


def _property():
    return LTLFOProperty(
        "Main", parse_ltl("F p"),
        {"p": Eq(Var("status"), Const("picked"))}, name="eventually-picked",
    )


@pytest.fixture
def server(tmp_path, worker_model):
    server = VerificationServer(
        store_path=tmp_path / "jobs.db", port=0, workers=1,
        sweep_interval=0.1, worker_model=worker_model,
    )
    server.start()
    yield server
    server.stop()


@pytest.fixture
def client(server):
    return VerifasClient(server.url, poll_initial=0.02, poll_max=0.2)


def _raw_get(url: str, headers=None):
    """(status, content_type, body-text) without the client's JSON parsing."""
    request = urllib.request.Request(url, headers={**auth_headers(), **(headers or {})})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (response.status, response.headers.get("Content-Type", ""),
                    response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return (error.code, error.headers.get("Content-Type", ""),
                error.read().decode("utf-8"))


class TestLivenessAndReadiness:
    def test_healthz_is_a_cheap_liveness_probe(self, client):
        view = client.healthz()
        assert view["status"] == "ok"
        assert view["uptime_seconds"] >= 0

    def test_readyz_on_a_healthy_server(self, server, client):
        ready, view = client.readyz()
        assert ready is True
        assert view["status"] == "ready"
        checks = view["checks"]
        assert checks["store"]["ok"] is True
        assert checks["workers"]["ok"] is True
        assert checks["workers"]["alive"] >= 1
        assert checks["workers"]["model"] == server.worker_model
        assert checks["sweeper"]["ok"] is True
        assert checks["sweeper"]["thread_alive"] is True

    def test_readyz_http_status_flips_to_503_when_store_fails(self, server):
        server.store.ping = lambda *a, **kw: False  # simulate a wedged store
        status, _ctype, body = _raw_get(f"{server.url}/readyz")
        assert status == 503
        assert '"unready"' in body and '"store"' in body

    def test_client_reports_unready_as_a_verdict_not_an_error(self, server):
        server.store.ping = lambda *a, **kw: False
        ready, view = VerifasClient(server.url).readyz()
        assert ready is False
        assert view["status"] == "unready"
        assert view["checks"]["store"]["ok"] is False
        # The healthy checks are still reported for the operator.
        assert view["checks"]["sweeper"]["ok"] is True

    def test_api_only_server_is_ready_without_workers(self, tmp_path):
        server = VerificationServer(
            store_path=tmp_path / "jobs.db", port=0, workers=0,
            sweep_interval=0.1,
        )
        server.start()
        try:
            ready, view = VerifasClient(server.url).readyz()
            assert ready is True
            assert view["checks"]["workers"]["total"] == 0
        finally:
            server.stop()


class TestPrometheusExposition:
    def test_query_param_selects_the_text_format(self, server, client, tiny_system):
        # Run one job first so the latency summary has mass.
        handle = client.submit(
            dump_system(tiny_system), [dump_property(_property())], options=OPTIONS
        )[0]
        client.wait(handle.id, deadline_seconds=60)

        text = client.metrics_prometheus()
        assert "# TYPE repro_jobs_submitted_total counter" in text
        assert "repro_jobs_submitted_total 1" in text
        assert "# TYPE repro_uptime_seconds gauge" in text
        assert "repro_up 1" in text
        assert text.endswith("\n")

        # The latency summary exposes quantiles, sum and count.
        assert '# TYPE repro_job_latency_seconds summary' in text
        assert 'repro_job_latency_seconds{quantile="0.5"}' in text
        assert "repro_job_latency_seconds_count 1" in text

        # Per-worker gauges appear only once workers register in the pool
        # (the process model does; render_prometheus label formatting is
        # unit-tested in test_metrics.py).
        if server.metrics.worker_gauges.snapshot():
            assert 'repro_worker_busy{worker_id="' in text

    def test_accept_header_negotiates_text(self, server):
        status, ctype, body = _raw_get(
            f"{server.url}/v1/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert ctype.startswith("text/plain")
        assert "repro_up 1" in body

    def test_json_stays_the_default(self, server):
        status, ctype, body = _raw_get(f"{server.url}/v1/metrics")
        assert status == 200
        assert ctype.startswith("application/json")
        assert body.lstrip().startswith("{")

    def test_format_json_overrides_a_text_accept_header(self, server):
        status, ctype, _body = _raw_get(
            f"{server.url}/v1/metrics?format=json",
            headers={"Accept": "text/plain"},
        )
        assert status == 200
        assert ctype.startswith("application/json")

    def test_server_id_label_is_escaped_and_reported(self, tmp_path):
        server = VerificationServer(
            store_path=tmp_path / "jobs.db", port=0, workers=0,
            server_id="scrape-me",
        )
        server.start()
        try:
            text = VerifasClient(server.url).metrics_prometheus()
            assert 'repro_server_info{server_id="scrape-me"} 1' in text
        finally:
            server.stop()
