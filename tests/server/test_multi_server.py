"""End-to-end tests of multi-server deployments sharing one store file.

Two layers:

* ``TestSharedStoreInProcess`` -- two :class:`VerificationServer` instances
  (two connection pools, as two processes would hold) on one WAL store:
  cross-server claim and event visibility, a ``DELETE`` handled by one
  server cancelling a search running on the other (both worker models, via
  the ``worker_model`` fixture), scoped startup recovery, and single-sweeper
  lease election.

* ``TestTwoServeProcesses`` -- the acceptance scenario proper: two real
  ``python -m repro serve`` OS processes joined on one ``--store`` file with
  distinct ``--server-id``\\ s.  Submits through one server and observes the
  claim, the event stream, a cross-server DELETE-cancel, and a SIGKILL'd
  server's job being rescued and completed by the survivor.  The number of
  joined servers comes from ``REPRO_TEST_SERVERS`` (default 2; CI runs a
  dedicated job with it set; ``0`` skips the subprocess layer, keeping
  budget-bound runs fast).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.client import VerifasClient
from repro.has.conditions import Const, Eq, Neq, Var
from repro.ltl import LTLFOProperty, parse_ltl
from repro.server import VerificationServer
from repro.spec import dump_property, dump_system

#: How many `serve` processes the subprocess layer joins on one store.
SERVER_COUNT = int(os.environ.get("REPRO_TEST_SERVERS", "2"))

#: The source tree, for the subprocesses' PYTHONPATH.
_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))), "src"
)


def _tiny_property():
    return LTLFOProperty(
        "Main",
        parse_ltl("F p"),
        {"p": Eq(Var("status"), Const("picked"))},
        name="eventually-picked",
    )


def _exploding_property(index: int = 0):
    """Satisfied on the exploding system: the search must exhaust the space."""
    return LTLFOProperty(
        "Main",
        parse_ltl("G !(p & q)"),
        {"p": Eq(Var("v0"), Const("c0")), "q": Eq(Var("v0"), Const("c1"))},
        name=f"consistent-{index}",
    )


def _wait_until(predicate, deadline_seconds: float = 30.0, message: str = "condition"):
    deadline = time.monotonic() + deadline_seconds
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {message}"
        time.sleep(0.02)


# --------------------------------------------------- in-process server pairs


class TestSharedStoreInProcess:
    def _pair(self, tmp_path, worker_model, stale_after: float = 15.0, **b_kwargs):
        """Server a (no workers, the 'front') + server b (the 'backend')."""
        store_path = tmp_path / "shared.db"
        a = VerificationServer(
            store_path=store_path, port=0, workers=0, server_id="a",
            sweep_interval=0.1, heartbeat_interval=0.1,
            stale_heartbeat_seconds=stale_after,
        )
        a.start()
        b_kwargs.setdefault("workers", 1)
        b = VerificationServer(
            store_path=store_path, port=0, server_id="b",
            sweep_interval=0.1, progress_interval=25,
            heartbeat_interval=0.1, cancel_poll_interval=0.05,
            stale_heartbeat_seconds=stale_after,
            worker_model=worker_model, **b_kwargs,
        )
        b.start()
        if worker_model == "process" and b.worker_model != "process":
            a.stop()
            b.stop()  # pragma: no cover - sandbox guard
            pytest.skip(f"no process support here: {b.worker_fallback_error}")
        return a, b

    def test_submit_on_one_server_runs_and_reads_on_the_other(
        self, tmp_path, tiny_system, worker_model
    ):
        a, b = self._pair(tmp_path, worker_model)
        try:
            front = VerifasClient(a.url, poll_initial=0.02)
            handle = front.submit(
                dump_system(tiny_system), [dump_property(_tiny_property())],
                options={"timeout_seconds": 60},
            )[0]
            # Server a has no workers: only b can have claimed and run it.
            view = front.wait(handle.id, deadline_seconds=60)
            assert view["status"] == "done"
            assert view["result"]["outcome"] == "satisfied"
            assert b.metrics.counter("jobs_completed") == 1
            assert a.metrics.counter("jobs_completed") == 0
            # The whole event stream (claimed on b) is visible through a.
            kinds = [e["kind"] for e in front.events(handle.id)["events"]]
            assert kinds and kinds[-1] == "done"
            # While running, the claim was attributed to b's workers; the
            # stored claim prefix proves which server owned it.
            assert view["claimed_by"] is None  # cleared once terminal
        finally:
            b.stop()
            a.stop()

    def test_delete_on_one_server_stops_a_search_on_the_other(
        self, tmp_path, exploding_system, worker_model
    ):
        """Acceptance: DELETE handled by server a cancels a hot search that
        server b's worker is running, via the store's cancel_requested flag
        (a holds no canceller for the job)."""
        a, b = self._pair(tmp_path, worker_model)
        try:
            front = VerifasClient(a.url, poll_initial=0.02)
            handle = front.submit(
                dump_system(exploding_system),
                [dump_property(_exploding_property())],
                options={"max_states": 500_000},
            )[0]
            _wait_until(
                lambda: any(
                    e["kind"] == "progress"
                    for e in front.events(handle.id)["events"]
                ),
                message="search progress on server b",
            )
            claimed_by = front.job(handle.id)["claimed_by"]
            assert claimed_by is not None and claimed_by.startswith("b:")

            ack = front.cancel(handle.id)
            assert ack["status"] == "cancelling" and ack["cancelled"] is True
            view = front.wait(handle.id, deadline_seconds=15)
            assert view["status"] == "cancelled"
            result = view["result"]
            assert result["outcome"] == "unknown"
            assert result["stats"]["cancelled"] is True
            assert result["stats"]["states_explored"] > 0
            # The partial verdict never enters the shared results table.
            assert not a.store.has_result(handle.fingerprint)
            assert b.metrics.counter("jobs_cancelled") == 1
        finally:
            b.stop()
            a.stop()

    def test_startup_recovery_leaves_peer_jobs_alone(
        self, tmp_path, exploding_system, worker_model
    ):
        """A server joining (or restarting) while a peer has a live running
        job must not requeue it: recovery is scoped to its own claims."""
        a, b = self._pair(tmp_path, worker_model)
        c = None
        try:
            front = VerifasClient(a.url, poll_initial=0.02)
            handle = front.submit(
                dump_system(exploding_system),
                [dump_property(_exploding_property())],
                options={"max_states": 500_000},
            )[0]
            _wait_until(
                lambda: front.job(handle.id)["status"] == "running",
                message="job to start on server b",
            )
            c = VerificationServer(
                store_path=tmp_path / "shared.db", port=0, workers=0, server_id="c",
            )
            assert c.recovery.requeued == 0
            assert front.job(handle.id)["status"] == "running"
            front.cancel(handle.id)
            front.wait(handle.id, deadline_seconds=15)
        finally:
            if c is not None:
                c.store.close()
            b.stop()
            a.stop()

    def test_live_jobs_survive_an_aggressive_peer_stale_sweep(
        self, tmp_path, exploding_system, worker_model
    ):
        """Workers keep their claims' heartbeats fresh, so even a tight
        staleness threshold on the sweeping peer never 'rescues' (i.e.
        disrupts) a job that is actually running."""
        a, b = self._pair(tmp_path, worker_model, stale_after=2.0)
        try:
            front = VerifasClient(a.url, poll_initial=0.02)
            handle = front.submit(
                dump_system(exploding_system),
                [dump_property(_exploding_property())],
                options={"max_states": 500_000},
            )[0]
            _wait_until(
                lambda: front.job(handle.id)["status"] == "running",
                message="job to start on server b",
            )
            first_beat = a.store.get_job(handle.id).heartbeat_at
            assert first_beat is not None
            time.sleep(3.0)  # longer than the 2s staleness threshold
            job = a.store.get_job(handle.id)
            assert job.status == "running"
            assert job.heartbeat_at > first_beat  # liveness kept fresh
            assert a.metrics.counter("stale_jobs_requeued") == 0
            assert b.metrics.counter("stale_jobs_requeued") == 0
            front.cancel(handle.id)
            front.wait(handle.id, deadline_seconds=15)
        finally:
            b.stop()
            a.stop()

    def test_only_one_server_holds_the_sweeper_lease(
        self, tmp_path, worker_model
    ):
        a, b = self._pair(tmp_path, worker_model)
        try:
            _wait_until(
                lambda: a.store.lease_holder("sweeper") is not None,
                message="a sweeper to be elected",
            )
            holder = a.store.lease_holder("sweeper")
            assert holder in (a._lease_owner, b._lease_owner)
            # The election is stable: the loser keeps missing the lease.
            loser = b if holder == a._lease_owner else a
            _wait_until(
                lambda: loser.metrics.counter("sweeper_lease_misses") > 0,
                message="the other server to defer to the lease holder",
            )
            assert a.store.lease_holder("sweeper") == holder
        finally:
            b.stop()
            a.stop()


class TestServerIdentity:
    def test_server_id_with_colon_is_rejected(self, tmp_path):
        """':' is the claim-prefix separator: '10.0.0.2:' would substr-match
        a peer's '10.0.0.2:8081:proc-0' claims and requeue its live jobs."""
        for bad in ("a:b", "", "a b", " a"):
            with pytest.raises(ValueError, match="server_id"):
                VerificationServer(store_path=tmp_path / "jobs.db", server_id=bad)

    def test_plain_server_ids_are_accepted(self, tmp_path):
        server = VerificationServer(
            store_path=tmp_path / "jobs.db", port=0, workers=0, server_id="blue-1",
        )
        # The prefix carries the server id AND a per-incarnation nonce, so a
        # rolling restart with the same id never collides with its
        # predecessor's worker ids in ownership predicates.
        assert server.worker_id_prefix.startswith("blue-1:")
        assert server.worker_id_prefix != "blue-1:"
        other = VerificationServer(
            store_path=tmp_path / "jobs2.db", port=0, workers=0, server_id="blue-1",
        )
        assert other.worker_id_prefix != server.worker_id_prefix
        server.store.close()
        other.store.close()

    def test_staleness_inside_the_heartbeat_cadence_is_rejected(self, tmp_path):
        """stale-after within the heartbeat cadence would make the sweeper
        perpetually 'rescue' live jobs -- refuse the configuration."""
        with pytest.raises(ValueError, match="stale_heartbeat_seconds"):
            VerificationServer(
                store_path=tmp_path / "jobs.db",
                heartbeat_interval=1.0, stale_heartbeat_seconds=1.5,
            )


class TestSweeperRobustness:
    def test_sweeper_survives_transient_store_errors(
        self, tmp_path, tiny_system, monkeypatch
    ):
        """A transient OperationalError (e.g. an exhausted busy timeout
        under multi-process write contention) must not kill the sweeper
        thread: it is the only heartbeat source for thread-model claims,
        and it still has to sweep once the store recovers."""
        import sqlite3

        server = VerificationServer(
            store_path=tmp_path / "jobs.db", port=0, workers=1,
            sweep_interval=0.05, server_id="a",
        )
        real_sweep = server.store.sweep_expired
        failures = {"left": 3}

        def flaky(*args, **kwargs):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise sqlite3.OperationalError("database is locked")
            return real_sweep(*args, **kwargs)

        monkeypatch.setattr(server.store, "sweep_expired", flaky)
        server.start()
        try:
            client = VerifasClient(server.url, poll_initial=0.02)
            handle = client.submit(
                dump_system(tiny_system), [dump_property(_tiny_property())],
                options={"timeout_seconds": 60}, ttl_seconds=0.0,
            )[0]
            client.wait(handle.id, deadline_seconds=60)
            _wait_until(lambda: failures["left"] == 0, message="injected failures")

            def swept():
                try:
                    client.job(handle.id)
                    return False
                except Exception as error:
                    return getattr(error, "status", None) == 404

            # The sweeper absorbed the failures and still expires the job.
            _wait_until(swept, message="the expired job to be swept")
        finally:
            server.stop()


# ------------------------------------------------ real `serve` subprocesses


@pytest.mark.skipif(
    SERVER_COUNT < 2,
    reason="multi-process server e2e disabled (REPRO_TEST_SERVERS < 2)",
)
class TestTwoServeProcesses:
    """Two (or REPRO_TEST_SERVERS) joined `python -m repro serve` processes."""

    @staticmethod
    def _start_serve(store_path, server_id: str):
        """Launch one `serve` process; returns (process, url, lines)."""
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--store", str(store_path),
                "--server-id", server_id,
                "--workers", "1", "--worker-model", "thread",
                "--sweep-interval", "0.1",
                "--heartbeat-interval", "0.1",
                "--stale-after", "1.5",
                "--quiet",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={**os.environ, "PYTHONPATH": _SRC},
        )
        lines = []

        def pump():
            for line in process.stdout:
                lines.append(line.rstrip("\n"))

        threading.Thread(target=pump, daemon=True).start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            listening = [line for line in lines if "listening on " in line]
            if listening:
                url = listening[0].split("listening on ", 1)[1].split()[0]
                return process, url, lines
            if process.poll() is not None:
                break
            time.sleep(0.05)
        process.kill()
        raise AssertionError(
            f"serve process {server_id!r} never came up; output: {lines}"
        )

    @pytest.fixture
    def cluster(self, tmp_path):
        """REPRO_TEST_SERVERS `serve` processes joined on one store file."""
        store_path = tmp_path / "cluster.db"
        servers = []
        try:
            for index in range(SERVER_COUNT):
                process, url, lines = self._start_serve(store_path, f"s{index}")
                servers.append(
                    {"id": f"s{index}", "process": process, "url": url, "lines": lines}
                )
            yield servers
        finally:
            for server in servers:
                if server["process"].poll() is None:
                    server["process"].terminate()
            for server in servers:
                try:
                    server["process"].wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    server["process"].kill()

    def test_cross_server_claim_events_and_cancel(
        self, cluster, tiny_system, exploding_system
    ):
        """Acceptance: submit through one server, observe the claim and the
        event stream through another, and DELETE-cancel a job running on
        whichever server claimed it -- through a server that did NOT."""
        clients = [
            VerifasClient(server["url"], poll_initial=0.02) for server in cluster
        ]
        # Visibility: a tiny job submitted on server 0 completes somewhere
        # in the cluster and reads identically from every server.
        handle = clients[0].submit(
            dump_system(tiny_system), [dump_property(_tiny_property())],
            options={"timeout_seconds": 60},
        )[0]
        view = clients[-1].wait(handle.id, deadline_seconds=60)
        assert view["status"] == "done"
        assert view["result"]["outcome"] == "satisfied"
        for client in clients:
            page = client.events(handle.id)
            assert page["terminal"] is True
            assert [e["kind"] for e in page["events"]][-1] == "done"

        # Cancellation: a long search claimed by SOME server is cancelled
        # through a server that does not own it.
        handle = clients[0].submit(
            dump_system(exploding_system),
            [dump_property(_exploding_property())],
            options={"max_states": 500_000},
        )[0]
        _wait_until(
            lambda: clients[0].job(handle.id)["claimed_by"] is not None,
            message="the long job to be claimed",
        )
        owner_id = clients[0].job(handle.id)["claimed_by"].split(":", 1)[0]
        assert owner_id in [server["id"] for server in cluster]
        non_owner = next(
            client
            for server, client in zip(cluster, clients)
            if server["id"] != owner_id
        )
        ack = non_owner.cancel(handle.id)
        assert ack["status"] in ("cancelling", "cancelled")
        view = non_owner.wait(handle.id, deadline_seconds=15)
        assert view["status"] == "cancelled"
        assert view["result"]["stats"]["cancelled"] is True

    def test_sigkilled_server_job_is_rescued_by_the_survivor(
        self, cluster, exploding_system
    ):
        """Acceptance: SIGKILL the server that claimed a job mid-search; a
        surviving server's lease-guarded stale sweep requeues it and the
        job completes on the survivor."""
        clients = {
            server["id"]: VerifasClient(server["url"], poll_initial=0.02)
            for server in cluster
        }
        probe = next(iter(clients.values()))
        # timeout_seconds bounds the re-run after the rescue, so the test
        # terminates quickly; it is fingerprinted, hence cacheable.
        handle = probe.submit(
            dump_system(exploding_system),
            [dump_property(_exploding_property(1))],
            options={"max_states": 500_000, "timeout_seconds": 2},
        )[0]
        _wait_until(
            lambda: probe.job(handle.id)["claimed_by"] is not None,
            message="the job to be claimed",
        )
        owner_id = probe.job(handle.id)["claimed_by"].split(":", 1)[0]
        victim = next(s for s in cluster if s["id"] == owner_id)
        survivors = {
            server["id"]: clients[server["id"]]
            for server in cluster
            if server["id"] != owner_id
        }
        assert survivors, "need at least one surviving server"
        os.kill(victim["process"].pid, signal.SIGKILL)
        victim["process"].wait(timeout=10)

        # A survivor takes the sweeper lease (the victim's expires), sees
        # the heartbeat go stale, requeues the job, re-claims and runs it.
        survivor = next(iter(survivors.values()))
        view = survivor.wait(handle.id, deadline_seconds=60)
        assert view["status"] == "done"
        # The re-run happened on a survivor: its verifications counter moved.
        ran = [
            sid
            for sid, client in survivors.items()
            if client.metrics()["counters"]["verifications_run"] > 0
        ]
        assert ran, "no surviving server re-ran the rescued job"
