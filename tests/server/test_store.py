"""Tests of the persistent SQLite job/result store (repro.server.store)."""

from __future__ import annotations

import threading

import pytest

from repro.core.stats import SearchStatistics
from repro.core.verifier import VerificationOutcome, VerificationResult
from repro.server import JobStore, StoreBackedCache, recover
from repro.service import ResultCache, VerificationJob
from repro.spec import dump_property, dump_system


def _job(system, ltl_property, **options):
    from repro.core.options import VerifierOptions

    return VerificationJob(
        system_dict=dump_system(system),
        property_dict=dump_property(ltl_property),
        options_dict=VerifierOptions(**options).as_dict(),
    )


def _distinct_jobs(system, count):
    """*count* jobs with distinct fingerprints (distinct state budgets)."""
    from repro.has.conditions import Const, Eq, Var
    from repro.ltl import LTLFOProperty, parse_ltl

    prop = LTLFOProperty("Main", parse_ltl("F p"),
                         {"p": Eq(Var("status"), Const("picked"))}, name="f-picked")
    return [_job(system, prop, max_states=1000 + index) for index in range(count)]


def _result(name="p") -> VerificationResult:
    return VerificationResult(
        outcome=VerificationOutcome.SATISFIED,
        property_name=name,
        task="Main",
        stats=SearchStatistics(states_explored=3),
    )


@pytest.fixture
def store(tmp_path):
    store = JobStore(tmp_path / "jobs.db")
    yield store
    store.close()


@pytest.fixture
def sample_jobs(tiny_system):
    from repro.has.conditions import Const, Eq, Neq, Var
    from repro.ltl import LTLFOProperty, parse_ltl

    props = [
        LTLFOProperty("Main", parse_ltl("G ns"),
                      {"ns": Neq(Var("status"), Const("shipped"))}, name="never-shipped"),
        LTLFOProperty("Main", parse_ltl("F p"),
                      {"p": Eq(Var("status"), Const("picked"))}, name="eventually-picked"),
    ]
    return [_job(tiny_system, p, timeout_seconds=30) for p in props]


class TestJobLifecycle:
    def test_submit_persists_queued_job(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0], label="smoke")
        assert stored.status == "queued" and stored.label == "smoke"
        assert stored.fingerprint == sample_jobs[0].fingerprint
        fetched = store.get_job(stored.id)
        assert fetched is not None and fetched.submitted_at > 0
        # The payload round-trips into an equivalent engine-level job.
        assert fetched.to_job().fingerprint == sample_jobs[0].fingerprint

    def test_claim_next_is_fifo_and_marks_running(self, store, sample_jobs):
        first = store.submit(sample_jobs[0])
        second = store.submit(sample_jobs[1])
        claimed = store.claim_next()
        assert claimed.id == first.id and claimed.status == "running"
        assert claimed.started_at is not None
        assert store.claim_next().id == second.id
        assert store.claim_next() is None

    def test_mark_done_persists_result_under_fingerprint(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next()
        store.mark_done(stored.id, _result().as_dict())
        finished = store.get_job(stored.id)
        assert finished.status == "done" and finished.finished_at is not None
        assert store.get_result(stored.fingerprint)["outcome"] == "satisfied"

    def test_mark_done_keeps_an_already_persisted_result(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next()
        store.put_result(stored.fingerprint, _result("from-cache").as_dict())
        # mark_done skips the redundant write; the persisted result stands.
        store.mark_done(stored.id, _result("from-worker").as_dict())
        assert store.get_job(stored.id).status == "done"
        assert store.get_result(stored.fingerprint)["property_name"] == "from-cache"

    def test_mark_done_unknown_id_raises(self, store):
        with pytest.raises(KeyError):
            store.mark_done("nope", _result().as_dict())

    def test_mark_error(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next()
        store.mark_error(stored.id, "ValueError: boom")
        failed = store.get_job(stored.id)
        assert failed.status == "error" and failed.error == "ValueError: boom"
        assert store.counts()["error"] == 1

    def test_requeue_running(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next()
        assert store.requeue_running() == 1
        requeued = store.get_job(stored.id)
        assert requeued.status == "queued" and requeued.started_at is None
        assert store.requeue_running() == 0

    def test_duplicate_fingerprint_is_not_claimed_while_twin_runs(self, store, sample_jobs):
        first = store.submit(sample_jobs[0])
        duplicate = store.submit(sample_jobs[0])   # same fingerprint
        other = store.submit(sample_jobs[1])
        assert store.claim_next().id == first.id
        # The duplicate is skipped while its twin is in flight; the next
        # distinct job is handed out instead.
        assert store.claim_next().id == other.id
        assert store.claim_next() is None
        store.mark_done(first.id, _result().as_dict())
        assert store.claim_next().id == duplicate.id

    def test_each_job_is_claimed_exactly_once_across_threads(self, store, tiny_system):
        from repro.has.conditions import Const, Eq, Var
        from repro.ltl import LTLFOProperty, parse_ltl

        prop = LTLFOProperty("Main", parse_ltl("F p"),
                             {"p": Eq(Var("status"), Const("picked"))}, name="f-picked")
        # Distinct options -> 8 distinct fingerprints (claim-dedup stays out).
        jobs = [_job(tiny_system, prop, max_states=100 + index) for index in range(8)]
        ids = [store.submit(job).id for job in jobs]
        claimed, lock = [], threading.Lock()

        def worker():
            while True:
                stored = store.claim_next()
                if stored is None:
                    return
                with lock:
                    claimed.append(stored.id)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(claimed) == sorted(ids)


class TestJobIdCollisions:
    def test_id_collision_retries_with_a_fresh_id(self, store, sample_jobs, monkeypatch):
        """A colliding 12-hex id must be retried, not surface as an
        IntegrityError (an HTTP 500 to the submitter)."""
        import uuid as uuid_module

        first = store.submit(sample_jobs[0])

        class _Fake:
            def __init__(self, hex_value):
                self.hex = hex_value

        # First attempt collides with the existing job, second is fresh.
        attempts = iter([_Fake(first.id + "f" * 20), _Fake("b" * 32)])
        monkeypatch.setattr(
            "repro.server.store.uuid.uuid4", lambda: next(attempts)
        )
        second = store.submit(sample_jobs[1])
        assert second.id == "b" * 12 and second.id != first.id
        assert store.counts()["queued"] == 2


class TestWorkerClaims:
    def test_claim_records_worker_and_heartbeat(self, store, sample_jobs):
        store.submit(sample_jobs[0])
        claimed = store.claim_next(worker_id="proc-0")
        assert claimed.claimed_by == "proc-0"
        assert claimed.heartbeat_at is not None

    def test_anonymous_claims_never_heartbeat(self, store, sample_jobs):
        store.submit(sample_jobs[0])
        claimed = store.claim_next()
        assert claimed.claimed_by is None and claimed.heartbeat_at is None
        # ... and are therefore never considered stale, however old.
        assert store.requeue_stale(0.0) == 0
        assert store.get_job(claimed.id).status == "running"

    def test_heartbeat_refreshes_the_stamp(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next(worker_id="proc-0")
        before = store.get_job(stored.id).heartbeat_at
        assert store.heartbeat(stored.id, "proc-0") is True
        assert store.get_job(stored.id).heartbeat_at >= before

    def test_heartbeat_requires_ownership(self, store, sample_jobs):
        """Satellite: after requeue_stale hands the job to a new worker, the
        dead worker's agent must not be able to keep it alive forever."""
        stored = store.submit(sample_jobs[0])
        store.claim_next(worker_id="proc-0")
        assert store.requeue_stale(0.0) == 1               # rescued
        reclaimed = store.claim_next(worker_id="proc-1")
        assert reclaimed.id == stored.id
        stamp = store.get_job(stored.id).heartbeat_at
        # The zombie's heartbeat bounces and leaves the stamp untouched...
        assert store.heartbeat(stored.id, "proc-0") is False
        assert store.get_job(stored.id).heartbeat_at == stamp
        # ... while the live owner's lands.
        assert store.heartbeat(stored.id, "proc-1") is True

    def test_touch_claim_reports_ownership_and_cancel(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next(worker_id="proc-0")
        assert store.touch_claim(stored.id, "proc-0") == (True, False)
        # A cancel persisted by any server (here: directly) becomes visible.
        store.request_cancel(stored.id)
        assert store.touch_claim(stored.id, "proc-0") == (True, True)
        # A non-owner refreshes nothing but still sees the flag.
        assert store.touch_claim(stored.id, "proc-9") == (False, True)
        assert store.touch_claim("missing", "proc-0") == (False, False)

    def test_requeue_stale_rescues_dead_worker_jobs(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next(worker_id="proc-0")
        assert store.requeue_stale(3600.0) == 0  # heartbeat still fresh
        assert store.requeue_stale(0.0) == 1     # anything counts as stale
        requeued = store.get_job(stored.id)
        assert requeued.status == "queued"
        assert requeued.claimed_by is None and requeued.heartbeat_at is None

    def test_requeue_stale_finalises_cancel_requested_jobs(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next(worker_id="proc-0")
        assert store.request_cancel(stored.id) == ("cancelling", True)
        assert store.requeue_stale(0.0) == 0  # not requeued: cancelled instead
        assert store.get_job(stored.id).status == "cancelled"

    def test_release_requeues_a_running_job(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next(worker_id="proc-0")
        assert store.release(stored.id, "proc-0") is True
        released = store.get_job(stored.id)
        assert released.status == "queued" and released.started_at is None
        assert released.claimed_by is None

    def test_release_honours_a_pending_cancel(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next(worker_id="proc-0")
        store.request_cancel(stored.id)
        assert store.release(stored.id, "proc-0") is True
        assert store.get_job(stored.id).status == "cancelled"

    def test_release_is_a_no_op_off_running(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        assert store.release(stored.id) is False   # still queued
        assert store.release("missing") is False
        store.claim_next()
        store.mark_done(stored.id, _result().as_dict())
        assert store.release(stored.id) is False   # terminal
        assert store.get_job(stored.id).status == "done"

    def test_zombie_release_cannot_yank_a_rescued_job(self, store, sample_jobs):
        """Satellite: a crashed worker's cleanup must not requeue (or
        cancel-finalise) a job that was already rescued and re-claimed by a
        healthy worker elsewhere."""
        stored = store.submit(sample_jobs[0])
        store.claim_next(worker_id="proc-0")
        assert store.requeue_stale(0.0) == 1               # sweeper rescue
        reclaimed = store.claim_next(worker_id="other:proc-3")
        assert reclaimed.id == stored.id
        # The dead worker's cleanup fires late: ownership predicate rejects it.
        assert store.release(stored.id, "proc-0") is False
        healthy = store.get_job(stored.id)
        assert healthy.status == "running" and healthy.claimed_by == "other:proc-3"
        # Same with a pending cancel: the zombie cannot finalise either.
        store.request_cancel(stored.id)
        assert store.release(stored.id, "proc-0") is False
        assert store.get_job(stored.id).status == "running"
        # The rightful owner still can.
        assert store.release(stored.id, "other:proc-3") is True
        assert store.get_job(stored.id).status == "cancelled"

    def test_zombie_finalizer_cannot_overwrite_a_terminal_state(
        self, store, sample_jobs
    ):
        """A worker whose job was rescued by the stale-heartbeat sweeper may
        finish late; its mark must not overwrite the rescued copy's terminal
        state (e.g. flip `cancelled` back to `done`)."""
        stored = store.submit(sample_jobs[0])
        store.claim_next(worker_id="proc-0")
        assert store.requeue_stale(0.0) == 1          # sweeper rescues the job
        store.request_cancel(stored.id)               # user cancels the rescued copy
        assert store.get_job(stored.id).status == "cancelled"
        # The zombie worker's verdict arrives afterwards: rejected.
        assert store.mark_done(stored.id, _result().as_dict()) is False
        assert store.mark_error(stored.id, "late failure") is False
        assert store.mark_cancelled(stored.id, None) is False
        assert store.get_job(stored.id).status == "cancelled"
        # A live mark on a running job still returns True.
        other = store.submit(sample_jobs[1])
        store.claim_next()
        assert store.mark_done(other.id, _result().as_dict()) is True

    def test_zombie_mark_cannot_land_on_a_reclaimed_running_job(
        self, store, sample_jobs
    ):
        """Ownership predicate on mark_*: even while the rescued copy is
        still `running` (not yet terminal), a zombie's verdict with the old
        worker id must bounce -- only the live claim may finalise."""
        stored = store.submit(sample_jobs[0])
        store.claim_next(worker_id="proc-0")
        assert store.requeue_stale(0.0) == 1
        assert store.claim_next(worker_id="proc-1").id == stored.id
        assert store.mark_done(stored.id, _result().as_dict(), worker_id="proc-0") is False
        assert store.mark_error(stored.id, "late", worker_id="proc-0") is False
        assert store.mark_cancelled(stored.id, None, worker_id="proc-0") is False
        assert store.get_job(stored.id).status == "running"
        assert store.mark_done(stored.id, _result().as_dict(), worker_id="proc-1") is True

    def test_terminal_transitions_clear_the_claim(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next(worker_id="proc-0")
        store.mark_done(stored.id, _result().as_dict())
        finished = store.get_job(stored.id)
        assert finished.claimed_by is None and finished.heartbeat_at is None

    def test_requeue_stale_timestamps_come_from_one_clock_read(
        self, store, sample_jobs, monkeypatch
    ):
        """Satellite: the staleness cutoff and the expires_at base must both
        be computed inside the transaction -- under lock contention a
        pre-transaction cutoff drifts from the `now` used for the stamps.
        The stamps come from the first in-transaction `_now()` read; the
        cutoff from the shared (wall-floored) clock heartbeats use."""
        stored = store.submit(sample_jobs[0], ttl_seconds=10.0)
        store.claim_next(worker_id="proc-0")
        store.request_cancel(stored.id)
        # The old pre-lock implementation read its cutoff before the
        # transaction; with the iterator below its stamps would observe the
        # bogus follow-up value (-1.0) instead of the first read.
        clock = iter([1e12, -1.0, -1.0, -1.0])
        monkeypatch.setattr(store, "_now", lambda: next(clock))
        assert store.requeue_stale(0.0) == 0  # cancel-requested: finalised
        finalised = store.get_job(stored.id)
        assert finalised.status == "cancelled"
        assert finalised.finished_at == 1e12
        assert finalised.expires_at == 1e12 + 10.0


class TestLeases:
    def test_acquire_renew_and_contend(self, store):
        assert store.acquire_lease("sweeper", "server-a", 60.0) is True
        assert store.lease_holder("sweeper") == "server-a"
        # The holder renews; a contender is refused while the lease is live.
        assert store.acquire_lease("sweeper", "server-a", 60.0) is True
        assert store.acquire_lease("sweeper", "server-b", 60.0) is False
        assert store.lease_holder("sweeper") == "server-a"

    def test_expired_lease_is_taken_over(self, store):
        assert store.acquire_lease("sweeper", "server-a", 0.0) is True
        assert store.lease_holder("sweeper") is None  # already expired
        assert store.acquire_lease("sweeper", "server-b", 60.0) is True
        assert store.lease_holder("sweeper") == "server-b"

    def test_release_lease_requires_ownership(self, store):
        store.acquire_lease("sweeper", "server-a", 60.0)
        assert store.release_lease("sweeper", "server-b") is False
        assert store.lease_holder("sweeper") == "server-a"
        assert store.release_lease("sweeper", "server-a") is True
        assert store.lease_holder("sweeper") is None
        assert store.acquire_lease("sweeper", "server-b", 60.0) is True

    def test_independent_lease_names(self, store):
        assert store.acquire_lease("sweeper", "server-a", 60.0) is True
        assert store.acquire_lease("recovery", "server-b", 60.0) is True


class TestScopedRecovery:
    """requeue_running / cancel_interrupted scoped to one server's claims:
    a restarting server must not requeue jobs running live on its peers."""

    def test_requeue_running_scoped_to_owner_prefix(self, store, tiny_system):
        jobs = _distinct_jobs(tiny_system, 3)
        mine = store.submit(jobs[0])
        theirs = store.submit(jobs[1])
        unclaimed = store.submit(jobs[2])
        assert store.claim_next(worker_id="a:proc-0").id == mine.id
        assert store.claim_next(worker_id="b:proc-0").id == theirs.id
        assert store.claim_next().id == unclaimed.id
        # Server a restarts: its own claim and the unattributable one
        # requeue; server b's live job is left running.
        assert store.requeue_running(owner_prefix="a:") == 2
        assert store.get_job(mine.id).status == "queued"
        assert store.get_job(unclaimed.id).status == "queued"
        assert store.get_job(theirs.id).status == "running"
        # The legacy unscoped call still repairs everything.
        assert store.requeue_running() == 1
        assert store.get_job(theirs.id).status == "queued"

    def test_recovery_grace_spares_freshly_heartbeating_claims(
        self, store, tiny_system
    ):
        """Rolling restart: the replacement server's startup recovery must
        not yank jobs the old same-id instance is still draining (their
        heartbeats are fresh); heartbeat-less claims are always repaired."""
        jobs = _distinct_jobs(tiny_system, 2)
        draining = store.submit(jobs[0])
        unclaimed = store.submit(jobs[1])
        assert store.claim_next(worker_id="a:proc-0").id == draining.id
        assert store.claim_next().id == unclaimed.id  # anonymous, no heartbeat
        assert store.requeue_running(owner_prefix="a:", heartbeat_grace_seconds=60.0) == 1
        assert store.get_job(draining.id).status == "running"   # spared
        assert store.get_job(unclaimed.id).status == "queued"   # repaired
        # Once the heartbeat has aged past the grace, the claim is repaired.
        assert store.requeue_running(owner_prefix="a:", heartbeat_grace_seconds=0.0) == 1
        assert store.get_job(draining.id).status == "queued"

    def test_cancel_interrupted_scoped_to_owner_prefix(self, store, tiny_system):
        jobs = _distinct_jobs(tiny_system, 2)
        mine = store.submit(jobs[0])
        theirs = store.submit(jobs[1])
        store.claim_next(worker_id="a:proc-0")
        store.claim_next(worker_id="b:proc-0")
        store.request_cancel(mine.id)
        store.request_cancel(theirs.id)
        assert store.cancel_interrupted(owner_prefix="a:") == 1
        assert store.get_job(mine.id).status == "cancelled"
        # Server b's job keeps running; its own worker honours the cancel.
        assert store.get_job(theirs.id).status == "running"


class TestConcurrencyLayer:
    """The WAL / per-thread-connection layer of the shared-store design."""

    def test_file_stores_run_in_wal_mode(self, store):
        assert store.journal_mode == "wal"

    def test_memory_stores_stay_serialized(self):
        memory = JobStore()
        try:
            assert memory.journal_mode == "memory"
            assert memory._serial is not None
        finally:
            memory.close()

    def test_dead_threads_connections_are_pruned(self, store):
        """One connection per request thread must not leak: the HTTP server
        spawns a thread per request, and each dead thread's connection is
        closed when a later thread connects."""
        def touch():
            store.counts()

        for _ in range(8):
            thread = threading.Thread(target=touch)
            thread.start()
            thread.join()
        # The pool holds at most the opener's connection plus the most
        # recently dead thread's (pruned on the next thread's connect).
        with store._pool_lock:
            assert len(store._pool) <= 2

    def test_threads_get_their_own_connections(self, store):
        connections = {}

        def grab(name):
            connections[name] = store._connection()

        threads = [
            threading.Thread(target=grab, args=(index,)) for index in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        connections["main"] = store._connection()
        assert len(set(map(id, connections.values()))) == 4

    def test_two_store_handles_on_one_file_see_each_other(self, tmp_path, sample_jobs):
        """Two JobStore instances (two connection pools, as two server
        processes would hold) interleave claims and marks coherently."""
        path = tmp_path / "shared.db"
        a, b = JobStore(path), JobStore(path)
        try:
            stored = a.submit(sample_jobs[0])
            assert b.get_job(stored.id).status == "queued"
            claimed = b.claim_next(worker_id="b:proc-0")
            assert claimed.id == stored.id
            assert a.get_job(stored.id).claimed_by == "b:proc-0"
            assert a.claim_next(worker_id="a:proc-0") is None  # no double claim
            assert b.mark_done(stored.id, _result().as_dict(), worker_id="b:proc-0")
            assert a.get_job(stored.id).status == "done"
            assert a.get_result(stored.fingerprint, count=False) is not None
        finally:
            a.close()
            b.close()

    def test_use_after_close_raises_programming_error(self, tmp_path, sample_jobs):
        import sqlite3

        store = JobStore(tmp_path / "jobs.db")
        store.submit(sample_jobs[0])
        store.close()
        with pytest.raises(sqlite3.ProgrammingError):
            store.counts()


class TestMonotonicClock:
    """TTL / staleness arithmetic must survive wall-clock steps: the store
    clock is anchored once and advances with time.monotonic()."""

    def test_backward_wall_clock_step_cannot_immortalise_jobs(
        self, store, sample_jobs, monkeypatch
    ):
        import time as time_module

        stored = store.submit(sample_jobs[0], ttl_seconds=0.0)
        store.claim_next()
        store.mark_done(stored.id, _result().as_dict())
        # An NTP step pulls wall time a day into the past *after* the job
        # finished; the expiry comparison must not be pushed a day out.
        real_time = time_module.time
        monkeypatch.setattr(time_module, "time", lambda: real_time() - 86_400)
        assert store.sweep_expired()["jobs"] == 1

    def test_forward_wall_clock_step_cannot_mass_expire_jobs(
        self, store, sample_jobs, monkeypatch
    ):
        import time as time_module

        stored = store.submit(sample_jobs[0], ttl_seconds=3600.0)
        store.claim_next()
        store.mark_done(stored.id, _result().as_dict())
        real_time = time_module.time
        monkeypatch.setattr(time_module, "time", lambda: real_time() + 86_400)
        assert store.sweep_expired()["jobs"] == 0
        assert store.get_job(stored.id).status == "done"

    def test_store_clock_tracks_the_wall_epoch(self, store):
        import time as time_module

        assert abs(store._now() - time_module.time()) < 5.0

    def test_heartbeats_never_lag_the_wall_clock_after_a_suspend(
        self, store, sample_jobs
    ):
        """CLOCK_MONOTONIC does not advance through a host suspend / VM
        pause; after resume the store clock lags the wall clock.  Heartbeat
        stamps are compared against *peer processes'* clocks, so they take
        the later of the two -- or every job this server claims would look
        permanently stale to the sweeper-lease holder."""
        import time as time_module

        stored = store.submit(sample_jobs[0])
        store.claim_next(worker_id="proc-0")
        # Simulate a 100s suspend: the monotonic-anchored clock now lags.
        store._wall_anchor -= 100.0
        assert store._now() < time_module.time() - 50.0
        assert store.heartbeat(stored.id, "proc-0") is True
        assert store.get_job(stored.id).heartbeat_at >= time_module.time() - 5.0
        # A peer store handle with an accurate clock sees the claim as live.
        peer = JobStore(store.path)
        try:
            assert peer.requeue_stale(50.0) == 0
            assert peer.get_job(stored.id).status == "running"
        finally:
            peer.close()


class TestFingerprintDedupCorners:
    """A queued twin of a running job is deferred, but must be re-claimed
    and verified in its own right when the twin ends uncached (cancelled,
    deadline-partial, or its worker died)."""

    def test_queued_twin_is_claimable_after_twin_is_cancelled(self, store, sample_jobs):
        running = store.submit(sample_jobs[0])
        twin = store.submit(sample_jobs[0])
        assert store.claim_next(worker_id="proc-0").id == running.id
        assert store.claim_next(worker_id="proc-1") is None  # deferred
        store.request_cancel(running.id)
        store.mark_cancelled(running.id, None)
        # The cancelled twin produced no cached result: the queued twin must
        # not wedge -- it is claimed and verified like any other job.
        reclaimed = store.claim_next(worker_id="proc-1")
        assert reclaimed is not None and reclaimed.id == twin.id

    def test_queued_twin_is_claimable_after_deadline_partial_twin(
        self, store, sample_jobs
    ):
        running = store.submit(sample_jobs[0], deadline_ms=1)
        twin = store.submit(sample_jobs[0])
        assert store.claim_next().id == running.id
        # Deadline-truncated verdicts stay off the results table.
        store.mark_done(running.id, _result().as_dict(), persist_result=False)
        assert not store.has_result(running.fingerprint)
        reclaimed = store.claim_next()
        assert reclaimed is not None and reclaimed.id == twin.id

    def test_queued_twin_is_claimable_after_worker_death(self, store, sample_jobs):
        crashed = store.submit(sample_jobs[0])
        twin = store.submit(sample_jobs[0])
        assert store.claim_next(worker_id="proc-0").id == crashed.id
        store.release(crashed.id, "proc-0")  # the worker died; recovery path
        # FIFO: the released original comes back first, the twin after it.
        assert store.claim_next(worker_id="proc-1").id == crashed.id
        assert store.claim_next(worker_id="proc-2") is None
        store.mark_cancelled(crashed.id, None)
        assert store.claim_next(worker_id="proc-2").id == twin.id


class TestQueries:
    def test_list_jobs_filters_and_limits(self, store, sample_jobs):
        for _ in range(3):
            store.submit(sample_jobs[0])
        store.claim_next()  # claims the oldest; listing is newest-first
        assert [j.status for j in store.list_jobs()] == ["queued", "queued", "running"]
        assert len(store.list_jobs(status="queued")) == 2
        assert len(store.list_jobs(status="running")) == 1
        assert len(store.list_jobs(limit=1)) == 1

    def test_list_jobs_rejects_unknown_status(self, store):
        with pytest.raises(ValueError, match="unknown job status"):
            store.list_jobs(status="finished")

    def test_counts_cover_every_status(self, store, sample_jobs):
        assert store.counts() == {
            "queued": 0, "running": 0, "done": 0, "error": 0, "cancelled": 0,
        }
        store.submit(sample_jobs[0])
        store.submit(sample_jobs[1])
        store.claim_next()
        assert store.counts() == {
            "queued": 1, "running": 1, "done": 0, "error": 0, "cancelled": 0,
        }

    def test_get_result_counts_only_when_asked(self, store):
        store.put_result("fp", _result().as_dict())
        assert store.get_result("fp", count=False) is not None
        assert store.get_result("missing", count=False) is None
        assert store.statistics()["store_hits"] == 0
        assert store.statistics()["store_misses"] == 0
        store.get_result("fp")
        store.get_result("missing")
        assert store.statistics() == {"results": 1, "store_hits": 1, "store_misses": 1}

    def test_has_result_does_not_touch_counters(self, store):
        store.put_result("fp", _result().as_dict())
        assert store.has_result("fp") and not store.has_result("other")
        assert store.statistics()["store_hits"] == 0


class TestPersistence:
    def test_jobs_and_results_survive_reopen(self, tmp_path, sample_jobs):
        path = tmp_path / "jobs.db"
        store = JobStore(path)
        stored = store.submit(sample_jobs[0])
        store.claim_next()
        store.mark_done(stored.id, _result().as_dict())
        queued = store.submit(sample_jobs[1])
        store.close()

        reopened = JobStore(path)
        assert reopened.get_job(stored.id).status == "done"
        assert reopened.get_job(queued.id).status == "queued"
        assert reopened.get_result(stored.fingerprint, count=False) is not None
        reopened.close()

    def test_recover_requeues_interrupted_jobs(self, tmp_path, sample_jobs):
        path = tmp_path / "jobs.db"
        store = JobStore(path)
        done = store.submit(sample_jobs[0])
        store.claim_next()
        store.mark_done(done.id, _result().as_dict())
        interrupted = store.submit(sample_jobs[1])
        store.claim_next()  # now `running`; simulate the process dying here
        store.close()

        reopened = JobStore(path)
        report = recover(reopened)
        assert report.requeued == 1 and report.queued == 1
        assert report.completed == 1 and report.results_retained == 1
        assert reopened.get_job(interrupted.id).status == "queued"
        assert "re-queued" in report.summary()
        reopened.close()


class TestStoreBackedCache:
    def test_put_writes_memory_and_store(self, store):
        cache = StoreBackedCache(store)
        cache.put("fp", _result())
        assert cache.memory.peek("fp")
        assert store.has_result("fp")

    def test_get_prefers_memory_then_store(self, store):
        cache = StoreBackedCache(store)
        store.put_result("fp", _result("persisted").as_dict())
        first = cache.get("fp")  # memory miss -> store hit, promoted to memory
        assert first.property_name == "persisted"
        assert store.store_hits == 1
        second = cache.get("fp")  # now a pure memory hit
        assert second.property_name == "persisted"
        assert store.store_hits == 1  # store untouched the second time
        stats = cache.statistics()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["store_hits"] == 1

    def test_cold_memory_after_reopen_serves_from_store(self, tmp_path):
        path = tmp_path / "jobs.db"
        store = JobStore(path)
        StoreBackedCache(store).put("fp", _result())
        store.close()
        reopened = JobStore(path)
        cache = StoreBackedCache(reopened, ResultCache(max_entries=4))
        assert cache.get("fp") is not None  # cold memory, warm store
        assert reopened.store_hits == 1
        reopened.close()

    def test_miss_everywhere_returns_none(self, store):
        cache = StoreBackedCache(store)
        assert cache.get("absent") is None
        assert not cache.peek("absent")
