"""Tests of the persistent SQLite job/result store (repro.server.store)."""

from __future__ import annotations

import threading

import pytest

from repro.core.stats import SearchStatistics
from repro.core.verifier import VerificationOutcome, VerificationResult
from repro.server import JobStore, StoreBackedCache, recover
from repro.service import ResultCache, VerificationJob
from repro.spec import dump_property, dump_system


def _job(system, ltl_property, **options):
    from repro.core.options import VerifierOptions

    return VerificationJob(
        system_dict=dump_system(system),
        property_dict=dump_property(ltl_property),
        options_dict=VerifierOptions(**options).as_dict(),
    )


def _result(name="p") -> VerificationResult:
    return VerificationResult(
        outcome=VerificationOutcome.SATISFIED,
        property_name=name,
        task="Main",
        stats=SearchStatistics(states_explored=3),
    )


@pytest.fixture
def store(tmp_path):
    store = JobStore(tmp_path / "jobs.db")
    yield store
    store.close()


@pytest.fixture
def sample_jobs(tiny_system):
    from repro.has.conditions import Const, Eq, Neq, Var
    from repro.ltl import LTLFOProperty, parse_ltl

    props = [
        LTLFOProperty("Main", parse_ltl("G ns"),
                      {"ns": Neq(Var("status"), Const("shipped"))}, name="never-shipped"),
        LTLFOProperty("Main", parse_ltl("F p"),
                      {"p": Eq(Var("status"), Const("picked"))}, name="eventually-picked"),
    ]
    return [_job(tiny_system, p, timeout_seconds=30) for p in props]


class TestJobLifecycle:
    def test_submit_persists_queued_job(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0], label="smoke")
        assert stored.status == "queued" and stored.label == "smoke"
        assert stored.fingerprint == sample_jobs[0].fingerprint
        fetched = store.get_job(stored.id)
        assert fetched is not None and fetched.submitted_at > 0
        # The payload round-trips into an equivalent engine-level job.
        assert fetched.to_job().fingerprint == sample_jobs[0].fingerprint

    def test_claim_next_is_fifo_and_marks_running(self, store, sample_jobs):
        first = store.submit(sample_jobs[0])
        second = store.submit(sample_jobs[1])
        claimed = store.claim_next()
        assert claimed.id == first.id and claimed.status == "running"
        assert claimed.started_at is not None
        assert store.claim_next().id == second.id
        assert store.claim_next() is None

    def test_mark_done_persists_result_under_fingerprint(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next()
        store.mark_done(stored.id, _result().as_dict())
        finished = store.get_job(stored.id)
        assert finished.status == "done" and finished.finished_at is not None
        assert store.get_result(stored.fingerprint)["outcome"] == "satisfied"

    def test_mark_done_keeps_an_already_persisted_result(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next()
        store.put_result(stored.fingerprint, _result("from-cache").as_dict())
        # mark_done skips the redundant write; the persisted result stands.
        store.mark_done(stored.id, _result("from-worker").as_dict())
        assert store.get_job(stored.id).status == "done"
        assert store.get_result(stored.fingerprint)["property_name"] == "from-cache"

    def test_mark_done_unknown_id_raises(self, store):
        with pytest.raises(KeyError):
            store.mark_done("nope", _result().as_dict())

    def test_mark_error(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next()
        store.mark_error(stored.id, "ValueError: boom")
        failed = store.get_job(stored.id)
        assert failed.status == "error" and failed.error == "ValueError: boom"
        assert store.counts()["error"] == 1

    def test_requeue_running(self, store, sample_jobs):
        stored = store.submit(sample_jobs[0])
        store.claim_next()
        assert store.requeue_running() == 1
        requeued = store.get_job(stored.id)
        assert requeued.status == "queued" and requeued.started_at is None
        assert store.requeue_running() == 0

    def test_duplicate_fingerprint_is_not_claimed_while_twin_runs(self, store, sample_jobs):
        first = store.submit(sample_jobs[0])
        duplicate = store.submit(sample_jobs[0])   # same fingerprint
        other = store.submit(sample_jobs[1])
        assert store.claim_next().id == first.id
        # The duplicate is skipped while its twin is in flight; the next
        # distinct job is handed out instead.
        assert store.claim_next().id == other.id
        assert store.claim_next() is None
        store.mark_done(first.id, _result().as_dict())
        assert store.claim_next().id == duplicate.id

    def test_each_job_is_claimed_exactly_once_across_threads(self, store, tiny_system):
        from repro.has.conditions import Const, Eq, Var
        from repro.ltl import LTLFOProperty, parse_ltl

        prop = LTLFOProperty("Main", parse_ltl("F p"),
                             {"p": Eq(Var("status"), Const("picked"))}, name="f-picked")
        # Distinct options -> 8 distinct fingerprints (claim-dedup stays out).
        jobs = [_job(tiny_system, prop, max_states=100 + index) for index in range(8)]
        ids = [store.submit(job).id for job in jobs]
        claimed, lock = [], threading.Lock()

        def worker():
            while True:
                stored = store.claim_next()
                if stored is None:
                    return
                with lock:
                    claimed.append(stored.id)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sorted(claimed) == sorted(ids)


class TestQueries:
    def test_list_jobs_filters_and_limits(self, store, sample_jobs):
        for _ in range(3):
            store.submit(sample_jobs[0])
        store.claim_next()  # claims the oldest; listing is newest-first
        assert [j.status for j in store.list_jobs()] == ["queued", "queued", "running"]
        assert len(store.list_jobs(status="queued")) == 2
        assert len(store.list_jobs(status="running")) == 1
        assert len(store.list_jobs(limit=1)) == 1

    def test_list_jobs_rejects_unknown_status(self, store):
        with pytest.raises(ValueError, match="unknown job status"):
            store.list_jobs(status="finished")

    def test_counts_cover_every_status(self, store, sample_jobs):
        assert store.counts() == {
            "queued": 0, "running": 0, "done": 0, "error": 0, "cancelled": 0,
        }
        store.submit(sample_jobs[0])
        store.submit(sample_jobs[1])
        store.claim_next()
        assert store.counts() == {
            "queued": 1, "running": 1, "done": 0, "error": 0, "cancelled": 0,
        }

    def test_get_result_counts_only_when_asked(self, store):
        store.put_result("fp", _result().as_dict())
        assert store.get_result("fp", count=False) is not None
        assert store.get_result("missing", count=False) is None
        assert store.statistics()["store_hits"] == 0
        assert store.statistics()["store_misses"] == 0
        store.get_result("fp")
        store.get_result("missing")
        assert store.statistics() == {"results": 1, "store_hits": 1, "store_misses": 1}

    def test_has_result_does_not_touch_counters(self, store):
        store.put_result("fp", _result().as_dict())
        assert store.has_result("fp") and not store.has_result("other")
        assert store.statistics()["store_hits"] == 0


class TestPersistence:
    def test_jobs_and_results_survive_reopen(self, tmp_path, sample_jobs):
        path = tmp_path / "jobs.db"
        store = JobStore(path)
        stored = store.submit(sample_jobs[0])
        store.claim_next()
        store.mark_done(stored.id, _result().as_dict())
        queued = store.submit(sample_jobs[1])
        store.close()

        reopened = JobStore(path)
        assert reopened.get_job(stored.id).status == "done"
        assert reopened.get_job(queued.id).status == "queued"
        assert reopened.get_result(stored.fingerprint, count=False) is not None
        reopened.close()

    def test_recover_requeues_interrupted_jobs(self, tmp_path, sample_jobs):
        path = tmp_path / "jobs.db"
        store = JobStore(path)
        done = store.submit(sample_jobs[0])
        store.claim_next()
        store.mark_done(done.id, _result().as_dict())
        interrupted = store.submit(sample_jobs[1])
        store.claim_next()  # now `running`; simulate the process dying here
        store.close()

        reopened = JobStore(path)
        report = recover(reopened)
        assert report.requeued == 1 and report.queued == 1
        assert report.completed == 1 and report.results_retained == 1
        assert reopened.get_job(interrupted.id).status == "queued"
        assert "re-queued" in report.summary()
        reopened.close()


class TestStoreBackedCache:
    def test_put_writes_memory_and_store(self, store):
        cache = StoreBackedCache(store)
        cache.put("fp", _result())
        assert cache.memory.peek("fp")
        assert store.has_result("fp")

    def test_get_prefers_memory_then_store(self, store):
        cache = StoreBackedCache(store)
        store.put_result("fp", _result("persisted").as_dict())
        first = cache.get("fp")  # memory miss -> store hit, promoted to memory
        assert first.property_name == "persisted"
        assert store.store_hits == 1
        second = cache.get("fp")  # now a pure memory hit
        assert second.property_name == "persisted"
        assert store.store_hits == 1  # store untouched the second time
        stats = cache.statistics()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["store_hits"] == 1

    def test_cold_memory_after_reopen_serves_from_store(self, tmp_path):
        path = tmp_path / "jobs.db"
        store = JobStore(path)
        StoreBackedCache(store).put("fp", _result())
        store.close()
        reopened = JobStore(path)
        cache = StoreBackedCache(reopened, ResultCache(max_entries=4))
        assert cache.get("fp") is not None  # cold memory, warm store
        assert reopened.store_hits == 1
        reopened.close()

    def test_miss_everywhere_returns_none(self, store):
        cache = StoreBackedCache(store)
        assert cache.get("absent") is None
        assert not cache.peek("absent")
