"""Tests of repro.api.VerificationSession (satellite: deadline/cancellation
semantics under in-process execution)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import CancellationToken, SessionState, VerificationSession
from repro.core.options import VerifierOptions
from repro.has.conditions import Const, Eq, Neq, Var
from repro.ltl import LTLFOProperty, parse_ltl


def _safety_property(name="never-shipped"):
    return LTLFOProperty(
        "Main", parse_ltl("G ns"), {"ns": Neq(Var("status"), Const("shipped"))}, name=name
    )


def _exploding_property():
    """Satisfied on the exploding system, so the search must exhaust it."""
    return LTLFOProperty(
        "Main",
        parse_ltl("G !(p & q)"),
        {"p": Eq(Var("v0"), Const("c0")), "q": Eq(Var("v0"), Const("c1"))},
        name="consistent",
    )


class TestBlockingRun:
    def test_run_returns_result_and_buffers_events(self, tiny_system):
        session = VerificationSession(
            tiny_system, _safety_property(), VerifierOptions(timeout_seconds=30),
            progress_interval=1,
        )
        result = session.run()
        assert result.violated
        assert session.state is SessionState.DONE
        assert session.result() is result
        kinds = [event.kind for event in session.events()]
        assert kinds[0] == "phase"
        assert "progress" in kinds
        assert kinds[-2:] == ["stats", "done"]
        done = session.events()[-1]
        assert done.data["outcome"] == "violated"

    def test_events_after_cursor(self, tiny_system):
        session = VerificationSession(
            tiny_system, _safety_property(), VerifierOptions(timeout_seconds=30),
            progress_interval=1,
        )
        session.run()
        everything = session.events()
        tail = session.events_after(everything[2].seq)
        assert [e.seq for e in tail] == [e.seq for e in everything[3:]]

    def test_session_is_single_use(self, tiny_system):
        session = VerificationSession(tiny_system, _safety_property())
        session.run()
        with pytest.raises(RuntimeError, match="already"):
            session.run()
        with pytest.raises(RuntimeError, match="already"):
            session.start()

    def test_forwarded_sink_sees_every_event(self, tiny_system):
        forwarded = []
        session = VerificationSession(
            tiny_system, _safety_property(), VerifierOptions(timeout_seconds=30),
            event_sink=forwarded.append, progress_interval=1,
        )
        session.run()
        assert [e.seq for e in forwarded] == [e.seq for e in session.events()]

    def test_error_is_raised_and_recorded(self, tiny_system):
        bad = LTLFOProperty(
            "NoSuchTask", parse_ltl("G p"), {"p": Eq(Var("status"), Const("x"))}, name="bad"
        )
        session = VerificationSession(tiny_system, bad)
        with pytest.raises(ValueError, match="unknown task"):
            session.run()
        assert session.state is SessionState.ERROR
        with pytest.raises(ValueError, match="unknown task"):
            session.result()


class TestCancellation:
    def test_cancel_mid_search_returns_unknown_with_partial_stats(self, exploding_system):
        """A deliberately state-exploding system, cancelled mid-search."""
        session = VerificationSession(
            exploding_system, _exploding_property(),
            VerifierOptions(max_states=500_000), progress_interval=20,
        ).start()
        # Wait for evidence the search is actually exploring, then cancel.
        deadline = time.monotonic() + 30
        while not any(e.kind == "progress" for e in session.events()):
            assert time.monotonic() < deadline, "search never reported progress"
            time.sleep(0.01)
        session.cancel()
        result = session.result(timeout=30)
        assert result.unknown
        assert result.stats.cancelled and not result.stats.timed_out
        assert result.stats.states_explored >= 20  # partial statistics survive
        assert session.cancelled

    def test_cancel_poll_external_backend_stops_the_search(self, exploding_system):
        """The pollable backend (`multiprocessing.Event`-shaped): cancellation
        requested by flipping external state, with no reference to the token."""
        fired = threading.Event()
        session = VerificationSession(
            exploding_system, _exploding_property(),
            VerifierOptions(max_states=500_000), progress_interval=20,
            cancel_poll=fired.is_set,
        ).start()
        deadline = time.monotonic() + 30
        while not any(e.kind == "progress" for e in session.events()):
            assert time.monotonic() < deadline, "search never reported progress"
            time.sleep(0.01)
        fired.set()  # no session.cancel(): only the external backend fires
        result = session.result(timeout=30)
        assert result.unknown and result.stats.cancelled
        assert session.cancelled  # the token latched the external cancel

    def test_explicit_token_wins_over_cancel_poll(self, exploding_system):
        token = CancellationToken()
        session = VerificationSession(
            exploding_system, _exploding_property(),
            VerifierOptions(max_states=500_000),
            token=token, cancel_poll=lambda: True,  # ignored: token provided
        )
        token.cancel()
        result = session.run()
        assert result.stats.cancelled

    def test_cancel_before_start_stops_immediately(self, exploding_system):
        token = CancellationToken()
        token.cancel()
        session = VerificationSession(
            exploding_system, _exploding_property(),
            VerifierOptions(max_states=500_000), token=token,
        )
        result = session.run()
        assert result.unknown and result.stats.cancelled
        # Only the initial states were materialised before the first check.
        assert result.stats.states_explored <= 5

    def test_deadline_returns_unknown_timed_out(self, exploding_system):
        session = VerificationSession(
            exploding_system, _exploding_property(),
            VerifierOptions(max_states=500_000), deadline_seconds=0.3,
        )
        result = session.run()
        assert result.unknown
        assert result.stats.timed_out and not result.stats.cancelled

    def test_options_timeout_still_applies(self, exploding_system):
        """options.timeout_seconds folds into the control deadline."""
        session = VerificationSession(
            exploding_system, _exploding_property(),
            VerifierOptions(max_states=500_000, timeout_seconds=0.3),
        )
        result = session.run()
        assert result.unknown and result.stats.timed_out

    def test_options_timeout_is_scoped_per_verify(self, exploding_system):
        """A reusable caller control must not inherit an earlier verify's
        timeout: each call gets the full budget."""
        from repro.api import SearchControl
        from repro.core.verifier import Verifier

        control = SearchControl()
        verifier = Verifier(
            exploding_system, VerifierOptions(max_states=500_000, timeout_seconds=0.3)
        )
        first = verifier.verify(_exploding_property(), control)
        assert first.unknown and first.stats.timed_out
        # The shared token was not permanently tightened by the run.
        assert control.token.deadline is None
        assert control.stop_reason() is None

    def test_result_timeout_raises(self, exploding_system):
        session = VerificationSession(
            exploding_system, _exploding_property(),
            VerifierOptions(max_states=500_000),
        ).start()
        with pytest.raises(TimeoutError):
            session.result(timeout=0.05)
        session.cancel()
        assert session.result(timeout=30).unknown


class TestIterEvents:
    def test_iter_events_streams_until_done(self, tiny_system):
        session = VerificationSession(
            tiny_system, _safety_property(), VerifierOptions(timeout_seconds=30),
            progress_interval=1,
        )
        seen = []
        consumer_done = threading.Event()

        def consume():
            for event in session.iter_events(poll_timeout=5.0):
                seen.append(event)
            consumer_done.set()

        thread = threading.Thread(target=consume, daemon=True)
        thread.start()
        session.run()
        assert consumer_done.wait(timeout=10)
        assert [e.seq for e in seen] == [e.seq for e in session.events()]
        assert seen[-1].kind == "done"

    def test_iter_events_after_completion_replays_buffer(self, tiny_system):
        session = VerificationSession(
            tiny_system, _safety_property(), VerifierOptions(timeout_seconds=30),
            progress_interval=1,
        )
        session.run()
        replayed = list(session.iter_events())
        assert [e.seq for e in replayed] == [e.seq for e in session.events()]
