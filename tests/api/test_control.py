"""Unit tests of the cooperative-control primitives (repro.core.control)."""

from __future__ import annotations

import threading
import time

from repro.core.control import (
    STOP_CANCELLED,
    STOP_DEADLINE,
    CancellationToken,
    ProgressEvent,
    RateLimitedPoll,
    SearchControl,
)


class TestCancellationToken:
    def test_fresh_token_never_stops(self):
        token = CancellationToken()
        assert token.stop_reason() is None
        assert not token.should_stop()
        assert not token.cancelled
        assert token.remaining() is None

    def test_cancel_is_idempotent_and_thread_safe(self):
        token = CancellationToken()
        threads = [threading.Thread(target=token.cancel) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert token.cancelled
        assert token.stop_reason() == STOP_CANCELLED

    def test_deadline_expiry(self):
        token = CancellationToken.with_timeout(0.01)
        assert token.remaining() is not None
        time.sleep(0.03)
        assert token.expired()
        assert token.stop_reason() == STOP_DEADLINE
        assert not token.cancelled  # deadline expiry is not a cancel

    def test_explicit_cancel_wins_over_expired_deadline(self):
        token = CancellationToken.with_timeout(0.0)
        time.sleep(0.01)
        token.cancel()
        assert token.stop_reason() == STOP_CANCELLED

    def test_tighten_deadline_only_lowers(self):
        token = CancellationToken.with_timeout(100.0)
        before = token.deadline
        token.tighten_deadline(500.0)          # later: ignored
        assert token.deadline == before
        token.tighten_deadline(0.001)          # sooner: applied
        assert token.deadline < before
        token.tighten_deadline(None)           # no-op
        assert token.deadline < before

    def test_with_timeout_none_has_no_deadline(self):
        assert CancellationToken.with_timeout(None).deadline is None


class TestRateLimitedPoll:
    """The store-poll external backend: rate-limited, latching, fail-safe."""

    def test_polls_at_most_once_per_interval(self):
        calls = []
        poll = RateLimitedPoll(lambda: calls.append(1) and False, interval=60.0)
        assert poll() is False
        for _ in range(100):  # every further call answers from the cache
            assert poll() is False
        assert len(calls) == 1

    def test_zero_interval_polls_every_time(self):
        calls = []
        poll = RateLimitedPoll(lambda: len(calls) == 2 or calls.append(1), interval=0.0)
        assert poll() is False
        assert poll() is False
        assert poll() is True  # third poll: the underlying flag fired

    def test_truthy_result_latches_without_repolling(self):
        calls = []
        poll = RateLimitedPoll(lambda: calls.append(1) or True, interval=0.0)
        assert poll() is True
        assert poll() is True
        assert len(calls) == 1  # latched: the pollable is never consulted again

    def test_poll_exceptions_read_as_keep_going(self):
        def broken():
            raise RuntimeError("store closed")

        poll = RateLimitedPoll(broken, interval=0.0)
        assert poll() is False  # a dying store must never kill the search

    def test_as_token_external_backend(self):
        flag = []
        token = CancellationToken(
            external=RateLimitedPoll(lambda: bool(flag), interval=0.0)
        )
        assert not token.cancelled
        flag.append(1)
        assert token.cancelled
        assert token.stop_reason() == STOP_CANCELLED


class TestSearchControl:
    def test_default_control_is_inert(self):
        control = SearchControl()
        assert not control.should_stop()
        control.emit("progress", states_explored=1)  # no sink: dropped

    def test_events_are_sequenced_and_timestamped(self):
        received = []
        control = SearchControl(event_sink=received.append)
        control.emit_phase("search", property="p")
        control.emit_progress(10, 5, 3)
        control.emit("done", outcome="satisfied")
        assert [event.kind for event in received] == ["phase", "progress", "done"]
        assert [event.seq for event in received] == [1, 2, 3]
        assert received[0].data["phase"] == "search"
        assert received[1].data == {"states_explored": 10, "frontier": 5, "active": 3}
        assert all(event.timestamp > 0 for event in received)

    def test_progress_interval_gates_heartbeats(self):
        received = []
        control = SearchControl(event_sink=received.append, progress_interval=10)
        for count in range(1, 35):
            control.maybe_emit_progress(count, 0, 0)
        assert [event.data["states_explored"] for event in received] == [10, 20, 30]

    def test_broken_sink_never_raises(self):
        def sink(_event):
            raise RuntimeError("observer bug")

        control = SearchControl(event_sink=sink)
        control.emit("progress")  # must not propagate

    def test_cancel_shortcut(self):
        control = SearchControl()
        control.cancel()
        assert control.stop_reason() == STOP_CANCELLED

    def test_scoped_adds_a_private_deadline(self):
        parent = SearchControl()
        child = parent.scoped(0.01)
        assert child is not parent
        time.sleep(0.03)
        assert child.stop_reason() == STOP_DEADLINE
        # The parent's token is untouched: it can be reused with a fresh scope.
        assert parent.stop_reason() is None
        assert parent.token.deadline is None

    def test_scoped_inherits_parent_cancellation_and_deadline(self):
        parent = SearchControl(token=CancellationToken.with_timeout(0.01))
        child = parent.scoped(100.0)
        time.sleep(0.03)
        assert child.stop_reason() == STOP_DEADLINE  # parent deadline binds
        parent.cancel()
        assert child.stop_reason() == STOP_CANCELLED
        assert child.token.remaining() < 50.0  # min of own and inherited

    def test_scoped_without_timeout_returns_self(self):
        control = SearchControl()
        assert control.scoped(None) is control


class TestProgressEvent:
    def test_dict_round_trip(self):
        event = ProgressEvent(
            kind="progress", data={"states_explored": 7}, seq=3, timestamp=12.5
        )
        assert ProgressEvent.from_dict(event.as_dict()) == event

    def test_from_dict_defaults(self):
        event = ProgressEvent.from_dict({})
        assert event.kind == "progress" and event.seq == 0 and event.data == {}
