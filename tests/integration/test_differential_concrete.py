"""Differential tests: symbolic verifier vs explicitly simulated concrete runs.

For small specifications and small concrete databases we sample random
concrete local runs with :class:`repro.has.runs.ConcreteRunner`, evaluate
safety invariants on every sampled prefix, and check the two directions:

* if the symbolic verifier reports *satisfied*, no sampled concrete prefix may
  violate the invariant (soundness of the "satisfied" verdict);
* if some sampled prefix violates the invariant, the verifier must report
  *violated* (the sample is a genuine witness).

Only pure safety invariants (``G condition``) are used: a violation of such a
property is witnessed by a finite prefix, and in the chosen specifications
every reachable configuration has an applicable service, so every sampled
prefix extends to a valid infinite run.
"""

import random

import pytest

from repro import Verifier, VerifierOptions
from repro.has.conditions import And, Condition, Const, Eq, Neq, NULL, Or, Var
from repro.has.database import Database
from repro.has.runs import ConcreteRunner
from repro.ltl.ltlfo import LTLFOProperty
from repro.ltl.parser import parse_ltl


def _invariant_holds_on_run(run, condition: Condition, database) -> bool:
    return all(condition.evaluate(snapshot.valuation, database) for snapshot in run.snapshots)


INVARIANTS = [
    ("status-never-shipped", Neq(Var("status"), Const("shipped"))),
    ("status-never-bogus", Neq(Var("status"), Const("bogus"))),
    ("item-known-or-unpicked", Or(Eq(Var("item"), NULL), Neq(Var("status"), NULL))),
    ("picked-implies-item", Or(Neq(Var("status"), Const("picked")), Neq(Var("item"), NULL))),
    ("always-null-item", Eq(Var("item"), NULL)),
]


class TestTinySystemDifferential:
    @pytest.fixture
    def database(self, items_schema):
        return Database(items_schema, {"ITEMS": [("i1", 3, "tools"), ("i2", 8, "toys")]})

    @pytest.mark.parametrize("name,condition", INVARIANTS)
    def test_safety_verdicts_agree_with_sampled_runs(self, tiny_system, database, name, condition):
        verifier = Verifier(tiny_system, VerifierOptions(max_states=20_000, timeout_seconds=30))
        ltl_property = LTLFOProperty(
            "Main", parse_ltl("G p"), conditions={"p": condition}, name=name
        )
        verdict = verifier.verify(ltl_property)
        assert not verdict.unknown

        runner = ConcreteRunner(tiny_system, database)
        rng = random.Random(hash(name) % 100_000)
        sampled_violation = False
        for _ in range(60):
            run = runner.random_local_run(rng, max_length=10)
            if run.snapshots and not _invariant_holds_on_run(run, condition, database):
                sampled_violation = True
                break
        if verdict.satisfied:
            assert not sampled_violation, (
                f"verifier claims {name} holds but a concrete run violates it"
            )
        if sampled_violation:
            assert verdict.violated

    def test_known_violated_invariant_is_found_by_both(self, tiny_system, database):
        condition = Neq(Var("status"), Const("shipped"))
        verifier = Verifier(tiny_system, VerifierOptions(max_states=20_000))
        ltl_property = LTLFOProperty("Main", parse_ltl("G p"), conditions={"p": condition})
        assert verifier.verify(ltl_property).violated
        runner = ConcreteRunner(tiny_system, database)
        rng = random.Random(0)
        assert any(
            not _invariant_holds_on_run(runner.random_local_run(rng, max_length=10), condition, database)
            for _ in range(100)
        )


class TestRelationSystemDifferential:
    RELATION_INVARIANTS = [
        ("never-done", Neq(Var("status"), Const("done"))),
        ("item-or-new", Or(Neq(Var("item"), NULL), Neq(Var("status"), Const("done")))),
        ("no-mystery-status", Or(
            Or(Eq(Var("status"), NULL), Eq(Var("status"), Const("new"))),
            Eq(Var("status"), Const("done")),
        )),
    ]

    @pytest.fixture
    def database(self, items_schema):
        return Database(items_schema, {"ITEMS": [("i1", 3, "tools")]})

    @pytest.mark.parametrize("name,condition", RELATION_INVARIANTS)
    def test_safety_verdicts_agree_with_sampled_runs(self, relation_system, database, name, condition):
        verifier = Verifier(relation_system, VerifierOptions(max_states=20_000, timeout_seconds=30))
        ltl_property = LTLFOProperty(
            "Main", parse_ltl("G p"), conditions={"p": condition}, name=name
        )
        verdict = verifier.verify(ltl_property)
        assert not verdict.unknown

        runner = ConcreteRunner(relation_system, database)
        rng = random.Random(hash(name) % 100_000)
        sampled_violation = any(
            not _invariant_holds_on_run(run, condition, database)
            for run in (runner.random_local_run(rng, max_length=8) for _ in range(60))
            if run.snapshots
        )
        if verdict.satisfied:
            assert not sampled_violation
        if sampled_violation:
            assert verdict.violated


class TestServicePropositionDifferential:
    def test_service_occurrence_agrees(self, tiny_system, items_schema):
        """G(!ship) must be violated, and sampled runs do apply ship."""
        database = Database(items_schema, {"ITEMS": [("i1", 3, "tools")]})
        verifier = Verifier(tiny_system, VerifierOptions(max_states=20_000))
        ltl_property = LTLFOProperty("Main", parse_ltl("G (!ship)"), name="never-ship")
        assert verifier.verify(ltl_property).violated
        runner = ConcreteRunner(tiny_system, database)
        rng = random.Random(3)
        assert any(
            "ship" in runner.random_local_run(rng, max_length=10).services()
            for _ in range(100)
        )
