"""Round-trip tests of the spec serialization layer (repro.spec).

The core guarantee: ``load(dump(x)) == x`` structurally, for full artifact
systems (the quickstart, loan-origination and order-fulfillment examples) and
LTL-FO properties, through dicts, JSON text and files.
"""

from __future__ import annotations

import importlib.util
import json
import os

import pytest

from repro.benchmark.properties import LTL_TEMPLATES, generate_properties
from repro.benchmark.realworld import loan_origination, order_fulfillment
from repro.has.conditions import And, Const, Eq, Neq, Not, NULL, Or, RelationAtom, Var
from repro.has.types import IdType
from repro.ltl import GlobalVariable, LTLFOProperty, parse_ltl
from repro.spec import (
    SCHEMA_VERSION,
    SpecBundle,
    SpecError,
    SpecVersionError,
    dump_condition,
    dump_property,
    dump_system,
    fingerprint,
    load_condition,
    load_property,
    load_spec,
    load_system,
    save_spec,
)


def _quickstart_system():
    """The system built by examples/quickstart.py, imported from the example file."""
    examples = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        "examples",
    )
    spec = importlib.util.spec_from_file_location(
        "quickstart_example", os.path.join(examples, "quickstart.py")
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.build_system()


SYSTEM_FACTORIES = {
    "quickstart": _quickstart_system,
    "loan-origination": loan_origination,
    "order-fulfillment": order_fulfillment,
}


@pytest.mark.parametrize("name", sorted(SYSTEM_FACTORIES))
class TestSystemRoundTrip:
    def test_dict_roundtrip_is_identity(self, name):
        system = SYSTEM_FACTORIES[name]()
        assert load_system(dump_system(system)) == system

    def test_dump_is_deterministic_and_json_compatible(self, name):
        system = SYSTEM_FACTORIES[name]()
        first, second = dump_system(system), dump_system(SYSTEM_FACTORIES[name]())
        assert first == second
        assert fingerprint(first) == fingerprint(second)
        json.dumps(first)  # must not raise

    def test_json_text_roundtrip(self, name):
        system = SYSTEM_FACTORIES[name]()
        bundle = SpecBundle(system)
        assert SpecBundle.loads(bundle.dumps()).system == system

    def test_file_roundtrip_with_properties(self, name, tmp_path):
        system = SYSTEM_FACTORIES[name]()
        properties = generate_properties(system, templates=LTL_TEMPLATES[:3])
        path = tmp_path / f"{name}.spec.json"
        save_spec(system, path, properties=properties)
        bundle = load_spec(path)
        assert bundle.system == system
        assert bundle.properties == properties


class TestRelationSystemRoundTrip:
    def test_artifact_relations_and_updates(self, relation_system):
        assert load_system(dump_system(relation_system)) == relation_system

    def test_fingerprint_changes_with_content(self, tiny_system, relation_system):
        assert fingerprint(dump_system(tiny_system)) != fingerprint(
            dump_system(relation_system)
        )


class TestPropertyRoundTrip:
    def test_property_with_global_variables(self):
        ltl_property = LTLFOProperty(
            "ProcessOrders",
            parse_ltl("G ((close_TakeOrder & oos) -> ((!(ship & same)) U (restock & same)))"),
            conditions={
                "oos": And(Eq(Var("item_id"), Var("i")), Eq(Var("instock"), Const("No"))),
                "same": Eq(Var("item_id"), Var("i")),
                "ship": Neq(Var("status"), NULL),
                "restock": RelationAtom("ITEMS", [Var("i"), Const(10), Const("books")]),
            },
            global_variables=[GlobalVariable("i", IdType("ITEMS"))],
            name="restock-before-ship",
        )
        assert load_property(dump_property(ltl_property)) == ltl_property

    def test_formula_text_parses_back_identically(self):
        for template in LTL_TEMPLATES[1:]:  # skip the empty False baseline text
            formula = template.formula()
            assert parse_ltl(str(formula)) == formula

    def test_condition_codec_covers_all_connectives(self):
        condition = Or(
            Not(RelationAtom("R", [Var("x"), NULL])),
            And(Eq(Var("x"), Const(3.5)), Neq(Var("y"), Const("text"))),
        )
        assert load_condition(dump_condition(condition)) == condition


class TestCompatibilityRules:
    def test_unknown_keys_are_ignored(self, tiny_system):
        data = SpecBundle(tiny_system).to_dict()
        data["future_field"] = {"added": "in a later minor revision"}
        data["system"]["future_field"] = 1
        data["system"]["tasks"][0]["future_field"] = True
        data["system"]["internal_services"][0]["future_field"] = []
        assert SpecBundle.from_dict(data).system == tiny_system

    def test_missing_optional_keys_get_defaults(self, tiny_system):
        data = SpecBundle(tiny_system).to_dict()
        del data["generator"]
        for service in data["system"]["internal_services"]:
            service.pop("update")
        assert SpecBundle.from_dict(data).system == tiny_system

    def test_newer_major_version_is_rejected(self, tiny_system):
        data = SpecBundle(tiny_system).to_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(SpecVersionError):
            SpecBundle.from_dict(data)

    def test_version_defaults_to_one(self, tiny_system):
        data = SpecBundle(tiny_system).to_dict()
        del data["schema_version"]
        assert SpecBundle.from_dict(data).system == tiny_system


class TestErrors:
    def test_unknown_condition_operator(self):
        with pytest.raises(SpecError, match="unknown condition operator"):
            load_condition({"op": "xor"})

    def test_malformed_term(self):
        with pytest.raises(SpecError, match="'var' or 'const'"):
            load_condition({"op": "eq", "left": {"bogus": 1}, "right": {"var": "x"}})

    def test_unparsable_formula(self):
        with pytest.raises(SpecError, match="cannot parse LTL formula"):
            load_property({"task": "T", "formula": "G (("})

    def test_missing_system_section(self):
        with pytest.raises(SpecError, match="no 'system' section"):
            SpecBundle.from_dict({"schema_version": 1})

    def test_malformed_json_document(self):
        with pytest.raises(SpecError, match="malformed JSON"):
            SpecBundle.loads("{not json")

    def test_loaded_spec_is_revalidated(self, tiny_system):
        data = dump_system(tiny_system)
        data["hierarchy"]["Main"] = "Main"  # self-parent: no root
        from repro.has.artifact_system import SpecificationError

        with pytest.raises(SpecificationError):
            load_system(data)


class TestViolatedResultRoundTrip:
    """Serialized verification results carrying a real counterexample.

    The satisfied path is covered elsewhere; this pins the violated path: the
    counterexample must survive dict -> JSON text -> dict -> object intact.
    """

    @pytest.fixture
    def violated_result(self, tiny_system):
        from repro import Verifier, VerifierOptions

        ltl_property = LTLFOProperty(
            "Main",
            parse_ltl("G ns"),
            {"ns": Neq(Var("status"), Const("shipped"))},
            name="never-shipped",
        )
        result = Verifier(tiny_system, VerifierOptions(timeout_seconds=30)).verify(ltl_property)
        assert result.violated and result.counterexample is not None
        return result

    def test_counterexample_survives_json_roundtrip(self, violated_result):
        from repro.core.verifier import VerificationResult

        text = json.dumps(violated_result.as_dict())
        rebuilt = VerificationResult.from_dict(json.loads(text))
        assert rebuilt.violated
        assert rebuilt.as_dict() == violated_result.as_dict()
        original = violated_result.counterexample
        clone = rebuilt.counterexample
        assert clone is not None and len(clone) == len(original)
        assert clone.witness == original.witness
        assert [
            (step.service, step.description, step.buchi_state) for step in clone.steps
        ] == [
            (step.service, step.description, step.buchi_state) for step in original.steps
        ]
        assert clone.services() == original.services()
        assert clone.pretty() == original.pretty()

    def test_counterexample_roundtrip_is_canonical(self, violated_result):
        """Dump -> load -> dump is a fixpoint, so fingerprints stay stable."""
        from repro.core.verifier import VerificationResult

        first = violated_result.as_dict()
        second = VerificationResult.from_dict(first).as_dict()
        assert fingerprint(first) == fingerprint(second)


class TestYaml:
    def test_yaml_roundtrip_when_available(self, tiny_system, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "tiny.spec.yaml"
        save_spec(tiny_system, path)
        assert load_spec(path).system == tiny_system
