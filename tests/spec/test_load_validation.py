"""Load-time cross-validation of spec documents.

Regression pin: a property referencing a task or relation the system does
not define used to crash deep inside the search as a bare ``KeyError``.
It must now be rejected when the document is loaded, with the offending
VA code and name in the message -- and ``validate=False`` must bypass the
check so the lint CLI can still load the broken document and report every
diagnostic at once.
"""

from __future__ import annotations

import json

import pytest

from repro.has.builder import ArtifactSystemBuilder
from repro.has.conditions import Const, Eq, NULL, Var
from repro.has.schema import DatabaseSchema
from repro.ltl import LTLFOProperty, parse_ltl
from repro.spec import SpecBundle, SpecError, load_spec


def _bundle_dict():
    schema = DatabaseSchema.from_dict({"ITEMS": {"price": None}})
    builder = ArtifactSystemBuilder("xval", schema)
    root = builder.task("Main")
    root.id_variable("item", "ITEMS")
    root.variable("status")
    root.variable("other")
    root.internal_service(
        "go", pre=Eq(Var("status"), NULL), post=Eq(Var("status"), Var("other"))
    )
    system = builder.build()
    ltl_property = LTLFOProperty(
        "Main",
        parse_ltl("G(phi)"),
        {"phi": Eq(Var("status"), Const("done"))},
        name="p",
    )
    return SpecBundle(system, [ltl_property]).to_dict()


def test_clean_document_loads():
    bundle = SpecBundle.from_dict(_bundle_dict())
    assert [p.name for p in bundle.properties] == ["p"]


def test_unknown_task_rejected_at_load():
    data = _bundle_dict()
    data["properties"][0]["task"] = "Nope"
    with pytest.raises(SpecError) as excinfo:
        SpecBundle.from_dict(data)
    message = str(excinfo.value)
    assert "VA102" in message
    assert "Nope" in message


def test_unknown_relation_rejected_at_load():
    data = _bundle_dict()
    data["properties"][0]["conditions"]["phi"] = {
        "op": "atom",
        "relation": "GHOSTS",
        "args": [{"var": "item"}, {"var": "status"}],
    }
    with pytest.raises(SpecError) as excinfo:
        SpecBundle.from_dict(data)
    message = str(excinfo.value)
    assert "VA103" in message
    assert "GHOSTS" in message


def test_relation_arity_mismatch_rejected_at_load():
    data = _bundle_dict()
    # ITEMS has arity 2 (id + price); one argument is a mismatch.
    data["properties"][0]["conditions"]["phi"] = {
        "op": "atom",
        "relation": "ITEMS",
        "args": [{"var": "item"}],
    }
    with pytest.raises(SpecError) as excinfo:
        SpecBundle.from_dict(data)
    assert "VA104" in str(excinfo.value)


def test_validate_false_bypasses_cross_checks():
    data = _bundle_dict()
    data["properties"][0]["task"] = "Nope"
    bundle = SpecBundle.from_dict(data, validate=False)
    assert bundle.properties[0].task == "Nope"


def test_load_spec_path_threads_validate(tmp_path):
    data = _bundle_dict()
    data["properties"][0]["task"] = "Nope"
    path = tmp_path / "broken.json"
    path.write_text(json.dumps(data), encoding="utf-8")
    with pytest.raises(SpecError, match="VA102"):
        load_spec(path)
    bundle = load_spec(path, validate=False)
    assert bundle.properties[0].task == "Nope"
