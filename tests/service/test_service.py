"""Tests of the batch verification service (repro.service).

Covers the acceptance criteria of the subsystem: a batch of >= 8
(system × property) jobs on a 4-worker pool returns the same verdicts as
sequential ``Verifier.verify``, with cache hits reported for duplicate jobs.
"""

from __future__ import annotations

import pytest

from repro import Verifier, VerifierOptions
from repro.core.verifier import VerificationOutcome, VerificationResult
from repro.has.conditions import Const, Eq, Neq, NULL, Var
from repro.ltl import LTLFOProperty, parse_ltl
from repro.service import (
    BatchReport,
    JobCallbacks,
    JobResult,
    ResultCache,
    VerificationJob,
    VerificationService,
    jobs_from_bundle,
)
from repro.spec import SpecBundle


OPTIONS = VerifierOptions(timeout_seconds=30)


def _properties(task: str):
    """Four quick properties over the pick/ship/reset loop of *task*."""
    picked = Eq(Var("status"), Const("picked"))
    shipped = Eq(Var("status"), Const("shipped"))
    return [
        LTLFOProperty(task, parse_ltl("G ns"), {"ns": Neq(Var("status"), Const("shipped"))},
                      name="never-shipped"),
        LTLFOProperty(task, parse_ltl("G (p -> F s)"), {"p": picked, "s": shipped},
                      name="picked-then-shipped"),
        LTLFOProperty(task, parse_ltl("F p"), {"p": picked}, name="eventually-picked"),
        LTLFOProperty(task, parse_ltl("G (s -> X n)"), {"s": shipped, "n": Eq(Var("status"), NULL)},
                      name="reset-after-ship"),
    ]


class TestJobs:
    def test_fingerprint_is_content_addressed(self, tiny_system):
        prop = _properties("Main")[0]
        job_a = VerificationJob.from_objects(tiny_system, prop, OPTIONS)
        job_b = VerificationJob.from_objects(tiny_system, prop, OPTIONS)
        assert job_a.fingerprint == job_b.fingerprint

    def test_fingerprint_differs_per_property_and_options(self, tiny_system):
        props = _properties("Main")
        job_a = VerificationJob.from_objects(tiny_system, props[0], OPTIONS)
        job_b = VerificationJob.from_objects(tiny_system, props[1], OPTIONS)
        job_c = VerificationJob.from_objects(
            tiny_system, props[0], OPTIONS.with_(max_states=99)
        )
        assert len({job_a.fingerprint, job_b.fingerprint, job_c.fingerprint}) == 3

    def test_jobs_from_bundle(self, tiny_system):
        bundle = SpecBundle(tiny_system, _properties("Main"))
        jobs = jobs_from_bundle(bundle, options=OPTIONS)
        assert len(jobs) == 4
        selected = jobs_from_bundle(bundle, OPTIONS, property_names=["never-shipped"])
        assert [j.property_name for j in selected] == ["never-shipped"]

    def test_job_materialisation(self, tiny_system):
        prop = _properties("Main")[0]
        job = VerificationJob.from_objects(tiny_system, prop, OPTIONS)
        assert job.system() == tiny_system
        assert job.ltl_property() == prop
        assert job.options() == OPTIONS


class TestResultCache:
    def _result(self, name="p") -> VerificationResult:
        from repro.core.stats import SearchStatistics

        return VerificationResult(
            outcome=VerificationOutcome.SATISFIED,
            property_name=name,
            task="Main",
            stats=SearchStatistics(states_explored=7),
        )

    def test_hit_and_miss_counters(self):
        cache = ResultCache()
        assert cache.get("k1") is None
        cache.put("k1", self._result())
        cached = cache.get("k1")
        assert cached is not None and cached.property_name == "p"
        assert cache.statistics() == {"entries": 1, "hits": 1, "misses": 1}

    def test_get_returns_fresh_copies(self):
        cache = ResultCache()
        cache.put("k", self._result())
        first, second = cache.get("k"), cache.get("k")
        assert first is not second
        first.stats.states_explored = -1
        assert cache.get("k").stats.states_explored == 7

    def test_lru_eviction_order_without_gets_is_insertion_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", self._result("a"))
        cache.put("b", self._result("b"))
        cache.put("c", self._result("c"))
        assert len(cache) == 2
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", self._result("a"))
        cache.put("b", self._result("b"))
        assert cache.get("a") is not None  # "a" becomes most recent
        cache.put("c", self._result("c"))  # evicts "b", the LRU entry
        assert "a" in cache and "b" not in cache and "c" in cache

    def test_put_of_existing_key_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", self._result("a"))
        cache.put("b", self._result("b"))
        cache.put("a", self._result("a2"))  # re-put refreshes "a"
        cache.put("c", self._result("c"))
        assert "a" in cache and "b" not in cache and "c" in cache
        assert cache.get("a").property_name == "a2"

    def test_peek_does_not_refresh_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", self._result("a"))
        cache.put("b", self._result("b"))
        assert cache.peek("a")
        cache.put("c", self._result("c"))  # "a" is still the LRU entry
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_eviction_pressure_keeps_most_recently_used(self):
        cache = ResultCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.put(key, self._result(key))
        cache.get("a")
        cache.get("c")
        cache.put("d", self._result("d"))  # evicts "b"
        cache.put("e", self._result("e"))  # evicts "a"
        assert sorted(k for k in ("a", "b", "c", "d", "e") if k in cache) == ["c", "d", "e"]

    def test_peek_and_clear(self):
        cache = ResultCache()
        cache.put("k", self._result())
        assert cache.peek("k") and not cache.peek("other")
        cache.clear()
        assert len(cache) == 0 and cache.statistics()["hits"] == 0


class TestVerificationService:
    def test_single_verify_goes_through_cache(self, tiny_system):
        service = VerificationService(default_options=OPTIONS)
        prop = _properties("Main")[0]
        first = service.verify(tiny_system, prop)
        second = service.verify(tiny_system, prop)
        assert first.outcome == second.outcome == VerificationOutcome.VIOLATED
        assert service.cache.statistics()["hits"] == 1

    def test_submit_and_run_pending(self, tiny_system):
        service = VerificationService(default_options=OPTIONS)
        for prop in _properties("Main")[:2]:
            service.submit(tiny_system, prop)
        assert len(service.pending) == 2
        results = service.run_pending()
        assert len(results) == 2 and not service.pending

    def test_duplicate_jobs_in_one_batch_hit_the_cache(self, tiny_system):
        service = VerificationService(default_options=OPTIONS)
        prop = _properties("Main")[0]
        jobs = [VerificationJob.from_objects(tiny_system, prop, OPTIONS) for _ in range(3)]
        results = service.run_batch(jobs)
        assert [r.cache_hit for r in results] == [False, True, True]
        assert service.cache.statistics()["entries"] == 1

    def test_batch_parallel_matches_sequential_with_cache_hits(
        self, tiny_system, relation_system
    ):
        """Acceptance: >= 8 jobs, workers=4, verdicts match Verifier.verify,
        duplicates reported as cache hits."""
        pairs = [
            (system, prop)
            for system in (tiny_system, relation_system)
            for prop in _properties("Main")
        ]
        jobs = [VerificationJob.from_objects(s, p, OPTIONS) for s, p in pairs]
        # Duplicate two jobs to exercise in-batch cache hits.
        batch = jobs + [jobs[0], jobs[5]]
        assert len(batch) >= 8

        service = VerificationService()
        job_results = service.run_batch(batch, workers=4)

        sequential = [Verifier(s, OPTIONS).verify(p).outcome for s, p in pairs]
        assert [r.result.outcome for r in job_results[: len(pairs)]] == sequential
        assert [r.cache_hit for r in job_results[: len(pairs)]] == [False] * len(pairs)
        assert [r.cache_hit for r in job_results[len(pairs):]] == [True, True]
        assert job_results[len(pairs)].result.outcome == sequential[0]
        assert job_results[len(pairs) + 1].result.outcome == sequential[5]

    def test_second_batch_is_served_entirely_from_cache(self, tiny_system):
        service = VerificationService(default_options=OPTIONS)
        jobs = [
            VerificationJob.from_objects(tiny_system, prop, OPTIONS)
            for prop in _properties("Main")
        ]
        first = service.run_batch(jobs)
        second = service.run_batch(jobs)
        assert all(not r.cache_hit for r in first)
        assert all(r.cache_hit for r in second)
        assert [r.result.outcome for r in first] == [r.result.outcome for r in second]

    def test_batch_report_aggregation(self, tiny_system):
        service = VerificationService(default_options=OPTIONS)
        prop = _properties("Main")[0]
        jobs = [VerificationJob.from_objects(tiny_system, prop, OPTIONS)] * 2
        report = BatchReport(service.run_batch(jobs))
        assert report.total == 2 and report.cache_hits == 1
        assert report.outcomes == {"violated": 2}
        data = report.as_dict()
        assert data["total"] == 2 and len(data["results"]) == 2


class TestJobCallbacks:
    def test_callbacks_fire_per_job_with_cache_provenance(self, tiny_system):
        service = VerificationService(default_options=OPTIONS)
        props = _properties("Main")[:2]
        jobs = [VerificationJob.from_objects(tiny_system, p, OPTIONS) for p in props]
        events = []
        callbacks = JobCallbacks(
            on_started=lambda job: events.append(("started", job.property_name)),
            on_finished=lambda job, result, hit: events.append(
                ("finished", job.property_name, result.outcome.value, hit)
            ),
        )
        service.run_batch(jobs + [jobs[0]], callbacks=callbacks)
        assert events == [
            ("started", "never-shipped"),
            ("finished", "never-shipped", "violated", False),
            ("started", "picked-then-shipped"),
            ("finished", "picked-then-shipped", "satisfied", False),
            ("finished", "never-shipped", "violated", True),  # in-batch duplicate
        ]

    def test_cache_hits_skip_on_started(self, tiny_system):
        service = VerificationService(default_options=OPTIONS)
        job = VerificationJob.from_objects(tiny_system, _properties("Main")[0], OPTIONS)
        service.run_batch([job])
        started, finished = [], []
        callbacks = JobCallbacks(
            on_started=lambda j: started.append(j.fingerprint),
            on_finished=lambda j, r, hit: finished.append(hit),
        )
        service.run_batch([job], callbacks=callbacks)
        assert started == [] and finished == [True]


class TestSerializableResults:
    def test_result_dict_roundtrip(self, tiny_system):
        prop = _properties("Main")[0]
        result = Verifier(tiny_system, OPTIONS).verify(prop)
        assert result.counterexample is not None
        rebuilt = VerificationResult.from_dict(result.as_dict())
        assert rebuilt.outcome == result.outcome
        assert rebuilt.stats.as_dict() == result.stats.as_dict()
        assert rebuilt.counterexample.services() == result.counterexample.services()

    def test_result_is_picklable(self, tiny_system):
        import pickle

        prop = _properties("Main")[0]
        result = Verifier(tiny_system, OPTIONS).verify(prop)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.outcome == result.outcome

    def test_options_dict_roundtrip(self):
        options = VerifierOptions(state_pruning=False, timeout_seconds=1.5)
        rebuilt = VerifierOptions.from_dict(options.as_dict())
        assert rebuilt == options
        assert VerifierOptions.from_dict({"unknown": 1}) == VerifierOptions()
