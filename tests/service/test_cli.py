"""Tests of the ``python -m repro`` command line."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.has.conditions import Const, Eq, Neq, Var
from repro.ltl import LTLFOProperty, parse_ltl
from repro.spec import load_spec, save_spec


@pytest.fixture
def spec_path(tiny_system, tmp_path):
    properties = [
        LTLFOProperty("Main", parse_ltl("G ns"),
                      {"ns": Neq(Var("status"), Const("shipped"))}, name="never-shipped"),
        LTLFOProperty("Main", parse_ltl("G (p -> F s)"),
                      {"p": Eq(Var("status"), Const("picked")),
                       "s": Eq(Var("status"), Const("shipped"))}, name="response"),
    ]
    path = tmp_path / "tiny.spec.json"
    save_spec(tiny_system, path, properties=properties)
    return path


class TestVerifyCommand:
    def test_verify_all_properties(self, spec_path, capsys):
        exit_code = main(["verify", str(spec_path), "--timeout", "30"])
        out = capsys.readouterr().out
        assert exit_code == 1  # one property is violated
        assert "never-shipped" in out and "violated" in out
        assert "response" in out and "satisfied" in out

    def test_verify_selected_property_json(self, spec_path, capsys):
        exit_code = main(
            ["verify", str(spec_path), "--property", "response", "--json", "--timeout", "30"]
        )
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["total"] == 1
        assert data["results"][0]["property"] == "response"
        assert data["results"][0]["outcome"] == "satisfied"

    def test_verify_empty_spec_fails(self, tiny_system, tmp_path, capsys):
        path = tmp_path / "empty.spec.json"
        save_spec(tiny_system, path)
        assert main(["verify", str(path)]) == 2
        assert "no properties" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["verify", "/nonexistent/x.spec.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestBatchCommand:
    def test_batch_reports_cache_hits_for_duplicate_specs(self, spec_path, capsys):
        exit_code = main(
            ["batch", str(spec_path), str(spec_path), "--workers", "2", "--json",
             "--timeout", "30"]
        )
        assert exit_code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["total"] == 4
        assert data["cache_hits"] == 2  # second copy of the spec is all duplicates


class TestExportSpecCommand:
    def test_export_and_reload(self, tmp_path, capsys):
        out = tmp_path / "loan.spec.json"
        exit_code = main(
            ["export-spec", "loan-origination", "-o", str(out), "--with-properties", "2"]
        )
        assert exit_code == 0
        bundle = load_spec(out)
        assert bundle.system.name == "loan-origination"
        assert len(bundle.properties) == 2

    def test_unknown_workflow_fails(self, tmp_path, capsys):
        exit_code = main(["export-spec", "nope", "-o", str(tmp_path / "x.json")])
        assert exit_code == 2
        assert "unknown workflow" in capsys.readouterr().err
