"""Tests of the ``python -m repro`` command line."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.has.conditions import Const, Eq, Neq, Var
from repro.ltl import LTLFOProperty, parse_ltl
from repro.spec import load_spec, save_spec


@pytest.fixture
def spec_path(tiny_system, tmp_path):
    properties = [
        LTLFOProperty("Main", parse_ltl("G ns"),
                      {"ns": Neq(Var("status"), Const("shipped"))}, name="never-shipped"),
        LTLFOProperty("Main", parse_ltl("G (p -> F s)"),
                      {"p": Eq(Var("status"), Const("picked")),
                       "s": Eq(Var("status"), Const("shipped"))}, name="response"),
    ]
    path = tmp_path / "tiny.spec.json"
    save_spec(tiny_system, path, properties=properties)
    return path


class TestVerifyCommand:
    def test_verify_all_properties(self, spec_path, capsys):
        exit_code = main(["verify", str(spec_path), "--timeout", "30"])
        out = capsys.readouterr().out
        assert exit_code == 1  # one property is violated
        assert "never-shipped" in out and "violated" in out
        assert "response" in out and "satisfied" in out

    def test_verify_selected_property_json(self, spec_path, capsys):
        exit_code = main(
            ["verify", str(spec_path), "--property", "response", "--json", "--timeout", "30"]
        )
        assert exit_code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["total"] == 1
        assert data["results"][0]["property"] == "response"
        assert data["results"][0]["outcome"] == "satisfied"

    def test_verify_empty_spec_fails(self, tiny_system, tmp_path, capsys):
        path = tmp_path / "empty.spec.json"
        save_spec(tiny_system, path)
        assert main(["verify", str(path)]) == 2
        assert "no properties" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["verify", "/nonexistent/x.spec.json"]) == 2
        assert "error" in capsys.readouterr().err


class TestBatchCommand:
    def test_batch_reports_cache_hits_for_duplicate_specs(self, spec_path, capsys):
        exit_code = main(
            ["batch", str(spec_path), str(spec_path), "--workers", "2", "--json",
             "--timeout", "30"]
        )
        assert exit_code == 1
        data = json.loads(capsys.readouterr().out)
        assert data["total"] == 4
        assert data["cache_hits"] == 2  # second copy of the spec is all duplicates


class TestExitCodeContract:
    """Pin the documented contract: 0 satisfied / 1 violated / 2 error."""

    @pytest.fixture
    def satisfied_spec(self, tiny_system, tmp_path):
        path = tmp_path / "satisfied.spec.json"
        save_spec(tiny_system, path, properties=[
            LTLFOProperty("Main", parse_ltl("G (p -> F s)"),
                          {"p": Eq(Var("status"), Const("picked")),
                           "s": Eq(Var("status"), Const("shipped"))}, name="response"),
        ])
        return path

    def test_exit_0_when_every_property_is_satisfied(self, satisfied_spec):
        assert main(["verify", str(satisfied_spec), "--timeout", "30"]) == 0

    def test_exit_1_when_any_property_is_violated(self, spec_path):
        assert main(["verify", str(spec_path), "--timeout", "30"]) == 1

    def test_exit_2_on_usage_errors(self, spec_path, tmp_path, capsys):
        assert main(["verify", "/nonexistent/x.spec.json"]) == 2
        assert main(["verify", str(spec_path), "--property", "no-such-property"]) == 2
        assert main(["batch", str(tmp_path / "missing.spec.json")]) == 2
        capsys.readouterr()

    def test_exit_2_on_malformed_spec(self, tmp_path, capsys):
        path = tmp_path / "broken.spec.json"
        path.write_text("{not json")
        assert main(["verify", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_exit_2_when_outcome_is_unknown(self, satisfied_spec, capsys):
        # A state budget of 1 exhausts immediately: UNKNOWN must not exit 0.
        assert main(["verify", str(satisfied_spec), "--max-states", "1"]) == 2
        capsys.readouterr()

    def test_exit_2_on_invalid_has_system(self, spec_path, capsys):
        import json as json_module

        data = json_module.loads(spec_path.read_text())
        data["system"]["hierarchy"]["Main"] = "Main"  # self-parent: no root task
        bad = spec_path.parent / "invalid-system.spec.json"
        bad.write_text(json_module.dumps(data))
        assert main(["verify", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_batch_contract_matches_verify(self, satisfied_spec, spec_path, capsys):
        assert main(["batch", str(satisfied_spec), "--timeout", "30"]) == 0
        assert main(["batch", str(satisfied_spec), str(spec_path), "--timeout", "30"]) == 1
        capsys.readouterr()


class TestJsonOutput:
    """--json dumps BatchReport.as_dict() verbatim on stdout."""

    def test_verify_json_is_machine_readable(self, spec_path, capsys):
        exit_code = main(["verify", str(spec_path), "--json", "--timeout", "30"])
        assert exit_code == 1
        data = json.loads(capsys.readouterr().out)
        assert set(data) == {"total", "cache_hits", "outcomes", "results"}
        assert data["total"] == 2
        assert data["outcomes"] == {"violated": 1, "satisfied": 1}
        by_name = {entry["property"]: entry for entry in data["results"]}
        assert by_name["never-shipped"]["outcome"] == "violated"
        assert by_name["never-shipped"]["counterexample"] is not None
        assert by_name["response"]["counterexample"] is None
        assert all(len(entry["fingerprint"]) == 64 for entry in data["results"])

    def test_batch_json_round_trips_through_json(self, spec_path, capsys):
        main(["batch", str(spec_path), "--json", "--timeout", "30"])
        out = capsys.readouterr().out
        assert json.loads(out)["total"] == 2


class TestServeCommand:
    def test_serve_parser_wiring(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "3", "--store", "x.db", "--quiet"]
        )
        assert args.command == "serve"
        assert args.port == 0 and args.workers == 3 and args.store == "x.db"
        assert args.quiet is True
        assert callable(args.handler)

    def test_serve_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1" and args.port == 8080
        assert args.workers == 2 and args.store == "repro-jobs.db"
        # Process workers are the default: CPU-bound searches parallelise,
        # and sandboxes degrade to threads automatically at start().
        assert args.worker_model == "process"
        assert args.max_jobs_per_worker == 32

    def test_serve_worker_model_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--worker-model", "thread", "--max-jobs-per-worker", "5"]
        )
        assert args.worker_model == "thread"
        assert args.max_jobs_per_worker == 5
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--worker-model", "fibers"])

    def test_serve_with_unusable_store_path_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "missing-dir" / "jobs.db"
        assert main(["serve", "--port", "0", "--store", str(bad)]) == 2
        assert "cannot open job store" in capsys.readouterr().err

    def test_serve_on_occupied_port_exits_2(self, tmp_path, capsys):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]
        try:
            exit_code = main(
                ["serve", "--port", str(port), "--store", str(tmp_path / "jobs.db")]
            )
        finally:
            blocker.close()
        assert exit_code == 2
        assert "cannot listen" in capsys.readouterr().err


class TestExportSpecCommand:
    def test_export_and_reload(self, tmp_path, capsys):
        out = tmp_path / "loan.spec.json"
        exit_code = main(
            ["export-spec", "loan-origination", "-o", str(out), "--with-properties", "2"]
        )
        assert exit_code == 0
        bundle = load_spec(out)
        assert bundle.system.name == "loan-origination"
        assert len(bundle.properties) == 2

    def test_unknown_workflow_fails(self, tmp_path, capsys):
        exit_code = main(["export-spec", "nope", "-o", str(tmp_path / "x.json")])
        assert exit_code == 2
        assert "unknown workflow" in capsys.readouterr().err


class TestTenantCommand:
    def test_create_prints_key_once_and_list_redacts(self, tmp_path, capsys):
        store = str(tmp_path / "jobs.db")
        assert main(["tenant", "create", "acme", "--store", store,
                     "--weight", "2", "--rate-limit", "5",
                     "--max-pending", "10"]) == 0
        out = capsys.readouterr().out
        assert "api key: vk_" in out and "shown once" in out
        api_key = next(
            line.split("api key:")[1].strip()
            for line in out.splitlines() if "api key:" in line
        )
        assert main(["tenant", "list", "--store", store]) == 0
        listing = capsys.readouterr().out
        assert "acme" in listing and "weight 2" in listing
        assert api_key not in listing  # only the key_id handle appears
        # The key actually resolves against the same store.
        from repro.server import JobStore
        from repro.tenancy import TenantRegistry

        job_store = JobStore(store)
        try:
            resolved = TenantRegistry(job_store).resolve(api_key)
            assert resolved is not None and resolved.name == "acme"
            assert resolved.rate_limit == 5.0 and resolved.max_pending == 10
        finally:
            job_store.close()

    def test_create_json_includes_key_and_policy(self, tmp_path, capsys):
        store = str(tmp_path / "jobs.db")
        assert main(["tenant", "create", "acme", "--store", store,
                     "--burst", "3", "--rate-limit", "1.5", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["api_key"].startswith("vk_")
        assert data["rate_limit"] == 1.5 and data["burst"] == 3.0

    def test_duplicate_name_exits_2(self, tmp_path, capsys):
        store = str(tmp_path / "jobs.db")
        assert main(["tenant", "create", "acme", "--store", store]) == 0
        capsys.readouterr()
        assert main(["tenant", "create", "acme", "--store", store]) == 2
        assert "already in use" in capsys.readouterr().err

    def test_revoke_then_list_marks_revoked(self, tmp_path, capsys):
        store = str(tmp_path / "jobs.db")
        main(["tenant", "create", "acme", "--store", store])
        capsys.readouterr()
        assert main(["tenant", "revoke", "acme", "--store", store]) == 0
        main(["tenant", "list", "--store", store])
        assert "REVOKED" in capsys.readouterr().out

    def test_revoke_unknown_exits_2(self, tmp_path, capsys):
        store = str(tmp_path / "jobs.db")
        assert main(["tenant", "revoke", "ghost", "--store", store]) == 2
        assert "no tenant" in capsys.readouterr().err

    def test_empty_list(self, tmp_path, capsys):
        assert main(["tenant", "list", "--store", str(tmp_path / "jobs.db")]) == 0
        assert "no tenants" in capsys.readouterr().out

    def test_serve_auth_flag_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--auth"])
        assert args.auth is True
        args = build_parser().parse_args(["serve"])
        assert args.auth is False
