"""Tests for :class:`repro.client.aio.AsyncVerifasClient`.

Runs the asyncio client against a live :class:`VerificationServer` (its own
raw-socket HTTP/1.1 exchange, not urllib), covering concurrent fan-out
(``submit_many``), completion-order consumption (``as_completed``), the
long-poll event stream, the bounded-concurrency semaphore, and error
mapping.  ``asyncio.run`` keeps each test on a fresh event loop, which is
also what proves the lazily-created semaphore never binds a stale loop.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.client import AsyncVerifasClient, ClientError, RemoteJobError, VerifasClient
from repro.client.http import build_submit_payload
from repro.has.conditions import Const, Eq, Neq, Var
from repro.ltl import LTLFOProperty, parse_ltl
from repro.server import VerificationServer
from repro.spec import dump_property, dump_system

OPTIONS = {"timeout_seconds": 60}


def _properties():
    return [
        LTLFOProperty("Main", parse_ltl("G ns"),
                      {"ns": Neq(Var("status"), Const("shipped"))}, name="never-shipped"),
        LTLFOProperty("Main", parse_ltl("F p"),
                      {"p": Eq(Var("status"), Const("picked"))}, name="eventually-picked"),
    ]


@pytest.fixture
def server(tmp_path, worker_model):
    server = VerificationServer(
        store_path=tmp_path / "jobs.db", port=0, workers=2,
        sweep_interval=0.2, progress_interval=25, worker_model=worker_model,
    )
    server.start()
    yield server
    server.stop()


@pytest.fixture
def idle_server(tmp_path):
    server = VerificationServer(
        store_path=tmp_path / "jobs.db", port=0, workers=0,
        push_fallback_interval=0.05,
    )
    server.start()
    yield server
    server.stop()


def _payload(system, prop, label=None):
    return build_submit_payload(
        dump_system(system), [dump_property(prop)], options=OPTIONS, label=label
    )


class TestAsyncBasics:
    def test_healthz_and_metrics(self, server):
        async def scenario():
            client = AsyncVerifasClient(server.url)
            health = await client.healthz()
            metrics = await client.metrics()
            return health, metrics

        health, metrics = asyncio.run(scenario())
        assert health["status"] == "ok"
        assert "counters" in metrics

    def test_submit_wait_round_trip(self, server, tiny_system):
        async def scenario():
            client = AsyncVerifasClient(server.url, poll_initial=0.02, poll_max=0.2)
            handles = await client.submit(
                dump_system(tiny_system),
                [dump_property(p) for p in _properties()],
                options=OPTIONS,
                label="aio-smoke",
            )
            views = await client.wait_all([h.id for h in handles], deadline_seconds=60)
            return handles, views

        handles, views = asyncio.run(scenario())
        assert [h.property for h in handles] == ["never-shipped", "eventually-picked"]
        assert views[handles[0].id]["result"]["outcome"] == "violated"
        assert views[handles[1].id]["result"]["outcome"] == "satisfied"

    def test_error_mapping(self, server):
        async def scenario():
            client = AsyncVerifasClient(server.url)
            with pytest.raises(ClientError) as excinfo:
                await client.submit_payload({"nonsense": True})
            assert excinfo.value.status == 400
            with pytest.raises(ClientError) as not_found:
                await client.job("no-such-job")
            assert not_found.value.status == 404

        asyncio.run(scenario())

    def test_unreachable_server(self):
        async def scenario():
            client = AsyncVerifasClient("http://127.0.0.1:9", timeout=2.0)
            with pytest.raises(ClientError):
                await client.healthz()

        asyncio.run(scenario())

    def test_rejects_bad_urls(self):
        with pytest.raises(ValueError):
            AsyncVerifasClient("ftp://example.com")


class TestSubmitManyAsCompleted:
    def test_fan_out_and_completion_order_consumption(self, server, tiny_system):
        async def scenario():
            client = AsyncVerifasClient(server.url, poll_initial=0.02, poll_max=0.2)
            payloads = [
                _payload(tiny_system, prop, label=f"batch-{index}")
                for index, prop in enumerate(_properties())
            ]
            handles = await client.submit_many(payloads)
            seen = {}
            async for job_id, view in client.as_completed(
                [h.id for h in handles], deadline_seconds=60
            ):
                seen[job_id] = view
            return handles, seen

        handles, seen = asyncio.run(scenario())
        assert len(handles) == 2
        assert set(seen) == {h.id for h in handles}
        assert all(view["status"] == "done" for view in seen.values())

    def test_as_completed_unknown_id(self, server):
        async def scenario():
            client = AsyncVerifasClient(server.url)
            with pytest.raises(ClientError) as excinfo:
                async for _ in client.as_completed(["ghost"], deadline_seconds=5):
                    pass
            assert excinfo.value.status == 404

        asyncio.run(scenario())

    def test_wait_all_times_out_on_a_stuck_job(self, idle_server, tiny_system):
        async def scenario():
            sync = VerifasClient(idle_server.url)
            handle = sync.submit(
                dump_system(tiny_system), [dump_property(_properties()[0])],
                options=OPTIONS,
            )[0]
            client = AsyncVerifasClient(
                idle_server.url, poll_initial=0.02, poll_max=0.1
            )
            with pytest.raises(TimeoutError):
                await client.wait_all([handle.id], deadline_seconds=0.5)

        asyncio.run(scenario())

    def test_wait_raises_remote_error(self, idle_server, tiny_system):
        async def scenario():
            sync = VerifasClient(idle_server.url)
            handle = sync.submit(
                dump_system(tiny_system), [dump_property(_properties()[0])],
                options=OPTIONS,
            )[0]
            idle_server.store.claim_next()
            idle_server.store.mark_error(handle.id, "synthetic failure")
            client = AsyncVerifasClient(idle_server.url)
            with pytest.raises(RemoteJobError):
                await client.wait(handle.id, deadline_seconds=10)
            view = await client.wait(handle.id, deadline_seconds=10, raise_on_error=False)
            return view

        view = asyncio.run(scenario())
        assert view["status"] == "error"


class TestAsyncIterEvents:
    def test_long_poll_stream_ends_with_done(self, server, tiny_system):
        async def scenario():
            client = AsyncVerifasClient(server.url, wait_ms=5_000)
            handles = await client.submit(
                dump_system(tiny_system), [dump_property(_properties()[1])],
                options=OPTIONS,
            )
            kinds = []
            async for event in client.iter_events(handles[0].id, deadline_seconds=60):
                kinds.append(event["kind"])
            return kinds

        kinds = asyncio.run(scenario())
        assert kinds[0] == "phase"
        assert kinds[-1] == "done"

    def test_poll_fallback_mode(self, server, tiny_system):
        async def scenario():
            client = AsyncVerifasClient(
                server.url, push_events=False, poll_initial=0.02, poll_max=0.2
            )
            handles = await client.submit(
                dump_system(tiny_system), [dump_property(_properties()[1])],
                options=OPTIONS,
            )
            return [
                event["kind"]
                async for event in client.iter_events(handles[0].id, deadline_seconds=60)
            ]

        kinds = asyncio.run(scenario())
        assert kinds[-1] == "done"


class TestBoundedConcurrency:
    def test_semaphore_caps_in_flight_requests(self, server, tiny_system):
        async def scenario():
            client = AsyncVerifasClient(server.url, concurrency=2)
            in_flight = 0
            peak = 0
            inner = client._exchange

            async def instrumented(raw, method, path):
                nonlocal in_flight, peak
                in_flight += 1
                peak = max(peak, in_flight)
                try:
                    await asyncio.sleep(0.02)  # hold the slot long enough to overlap
                    return await inner(raw, method, path)
                finally:
                    in_flight -= 1

            client._exchange = instrumented
            await asyncio.gather(*(client.healthz() for _ in range(10)))
            return peak

        peak = asyncio.run(scenario())
        assert peak == 2

    def test_fresh_loop_per_run(self, server):
        # The semaphore is created lazily inside the running loop and
        # re-created when the loop changes, so the same client object works
        # across two separate asyncio.run calls (each runs a fresh loop).
        client = AsyncVerifasClient(server.url)
        assert asyncio.run(client.healthz())["status"] == "ok"
        assert asyncio.run(client.healthz())["status"] == "ok"


class TestAsyncBatchViews:
    def test_job_views_batches_and_skips_unknown(self, idle_server, tiny_system):
        async def scenario():
            client = AsyncVerifasClient(idle_server.url)
            handles = await client.submit(
                dump_system(tiny_system),
                [dump_property(p) for p in _properties()],
                options=OPTIONS,
            )
            views = await client.job_views([h.id for h in handles] + ["ghost"])
            return handles, views

        handles, views = asyncio.run(scenario())
        assert set(views) == {h.id for h in handles}
        assert all(view["status"] == "queued" for view in views.values())
