"""Unit tests of repro.client plus the ``batch --remote`` CLI path."""

from __future__ import annotations

import itertools
import json

import pytest

from repro.cli import main
from repro.client import ClientError, JobHandle, VerifasClient
from repro.has.conditions import Const, Eq, Neq, Var
from repro.ltl import LTLFOProperty, parse_ltl
from repro.server import VerificationServer
from repro.spec import save_spec


class TestBackoff:
    def test_delays_grow_exponentially_and_cap(self):
        client = VerifasClient(
            "http://example.invalid", poll_initial=0.1, poll_max=0.5, poll_backoff=2.0
        )
        delays = list(itertools.islice(client._backoff(), 5))
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


class TestJobHandle:
    def test_from_dict_defaults(self):
        handle = JobHandle.from_dict({"id": "abc", "fingerprint": "fp"})
        assert handle.id == "abc" and handle.url == "/v1/jobs/abc"
        assert handle.status == "queued"

    def test_from_full_dict(self):
        handle = JobHandle.from_dict({
            "id": "abc", "fingerprint": "fp", "system": "s", "property": "p",
            "status": "queued", "url": "/v1/jobs/abc",
        })
        assert handle.system == "s" and handle.property == "p"


class TestErrorMapping:
    def test_http_error_carries_status_and_body(self, tmp_path):
        server = VerificationServer(store_path=tmp_path / "jobs.db", port=0, workers=0)
        server.start()
        try:
            client = VerifasClient(server.url)
            with pytest.raises(ClientError) as excinfo:
                client.submit_payload({"schema_version": 1})  # no system section
            assert excinfo.value.status == 400
            assert "system" in str(excinfo.value)
        finally:
            server.stop()

    def test_trailing_slash_base_url_is_normalised(self):
        assert VerifasClient("http://host:1/").base_url == "http://host:1"


class TestUrlEscaping:
    """Satellite: job ids (or attacker-controlled id strings) containing
    `/`, `?`, `#` or spaces must neither break the request line nor resolve
    to a different route -- every path segment and query value is escaped."""

    @pytest.fixture
    def requests(self, monkeypatch):
        """Capture (method, path) of every request the client would send."""
        client = VerifasClient("http://example.invalid")
        captured = []

        def fake_request(method, path, payload=None):
            captured.append((method, path))
            return 200, {"events": [], "terminal": True}

        monkeypatch.setattr(client, "_request", fake_request)
        return client, captured

    def test_path_segments_are_percent_escaped(self, requests):
        client, captured = requests
        hostile = "a/b?c=1#frag x"
        client.job(hostile)
        client.cancel(hostile)
        client.events(hostile, cursor=7, limit=9)
        escaped = "a%2Fb%3Fc%3D1%23frag%20x"
        assert captured == [
            ("GET", f"/v1/jobs/{escaped}"),
            ("DELETE", f"/v1/jobs/{escaped}"),
            ("GET", f"/v1/jobs/{escaped}/events?cursor=7&limit=9"),
        ]

    def test_query_values_are_escaped(self, requests):
        client, captured = requests
        client.jobs(status="queued&limit=0", limit=5)
        assert captured == [("GET", "/v1/jobs?limit=5&status=queued%26limit%3D0")]

    def test_hostile_id_round_trips_to_a_clean_404(self, tmp_path):
        """Against a live server: the escaped id reaches the job route (not
        a surprise route or a broken request) and 404s with the id echoed."""
        server = VerificationServer(store_path=tmp_path / "jobs.db", port=0, workers=0)
        server.start()
        try:
            client = VerifasClient(server.url)
            for hostile in ("a/b", "a?x=1", "a#frag", "a b", "../../metrics"):
                with pytest.raises(ClientError) as excinfo:
                    client.job(hostile)
                assert excinfo.value.status == 404
                assert "no job with id" in str(excinfo.value)
                with pytest.raises(ClientError) as excinfo:
                    client.cancel(hostile)
                assert excinfo.value.status == 404
                assert "no job with id" in str(excinfo.value)
        finally:
            server.stop()


class TestRemoteBatch:
    @pytest.fixture
    def spec_path(self, tiny_system, tmp_path):
        properties = [
            LTLFOProperty("Main", parse_ltl("G ns"),
                          {"ns": Neq(Var("status"), Const("shipped"))}, name="never-shipped"),
            LTLFOProperty("Main", parse_ltl("F p"),
                          {"p": Eq(Var("status"), Const("picked"))}, name="eventually-picked"),
        ]
        path = tmp_path / "tiny.spec.json"
        save_spec(tiny_system, path, properties=properties)
        return path

    @pytest.fixture
    def server(self, tmp_path):
        server = VerificationServer(
            store_path=tmp_path / "remote-jobs.db", port=0, workers=2
        )
        server.start()
        yield server
        server.stop()

    def test_batch_remote_round_trips_through_the_server(self, spec_path, server, capsys):
        exit_code = main([
            "batch", str(spec_path), "--remote", server.url, "--json",
            "--timeout", "60", "--ttl", "3600",
        ])
        data = json.loads(capsys.readouterr().out)
        assert exit_code == 1  # never-shipped is violated
        assert data["total"] == 2
        outcomes = {r["property"]: r["outcome"] for r in data["results"]}
        assert outcomes == {"never-shipped": "violated", "eventually-picked": "satisfied"}
        # The jobs really ran on the server, not locally.
        assert server.metrics.counter("jobs_completed") == 2

    def test_batch_remote_unreachable_server_exits_2(self, spec_path, capsys):
        exit_code = main([
            "batch", str(spec_path), "--remote", "http://127.0.0.1:9", "--timeout", "5",
        ])
        assert exit_code == 2
        assert "cannot reach" in capsys.readouterr().err
