"""Unit tests for :mod:`repro.analysis.dataflow`.

The facts under test are the soundness-critical inputs of the in-search
pruning pass: the constant environment (must hold in every reachable
symbolic state), the dead-service / dead-opening sets (must imply zero
symbolic moves) and the informational summaries (footprints, at-most-once,
mutual exclusion, write-only variables) surfaced as VA302/VA504.
"""

from __future__ import annotations

from repro.analysis import analyze_system
from repro.analysis.dataflow import compute_dataflow_facts
from repro.analysis.satisfiability import (
    analyse_disjunct,
    binding_literals,
    statically_unsatisfiable_under,
)
from repro.core.expressions import ExpressionUniverse
from repro.core.isotypes import EQ, NEQ
from repro.core.static_analysis import conjunction_contradicts_bindings
from repro.has.builder import ArtifactSystemBuilder
from repro.has.conditions import And, Const, Eq, NULL, Neq, Or, RelationAtom, Var
from repro.has.schema import DatabaseSchema


def _schema():
    return DatabaseSchema.from_dict({"ITEMS": {"price": None}})


def _pinned_system(mode_value="basic"):
    """Root with mode pinned by Π; one live service, one premium-only
    service and one premium-only child (both dead under propagation)."""
    pre = And(
        And(Eq(Var("item"), NULL), Eq(Var("status"), NULL)),
        Eq(Var("mode"), Const(mode_value)),
    )
    builder = ArtifactSystemBuilder("pinned", _schema(), global_precondition=pre)
    root = builder.task("Main")
    root.id_variable("item", "ITEMS")
    root.variable("status")
    root.variable("mode")
    root.internal_service(
        "go",
        pre=Eq(Var("status"), NULL),
        post=Eq(Var("status"), Const("done")),
        propagated=["mode"],
    )
    root.internal_service(
        "premium_only",
        pre=Eq(Var("mode"), Const("premium")),
        post=Eq(Var("status"), Const("p")),
        propagated=["mode"],
    )
    child = builder.task("Premium", parent="Main")
    child.variable("cs")
    child.internal_service(
        "cgo", pre=Eq(Var("cs"), NULL), post=Eq(Var("cs"), Const("x"))
    )
    child.opening(pre=Eq(Var("mode"), Const("premium")))
    return builder.build()


# ----------------------------------------------------------- satisfiability


class TestSatisfiabilityHelpers:
    def test_analyse_disjunct_congruence_forces_bindings(self):
        literals = [Eq(Var("x"), Var("y")), Eq(Var("y"), Const("a"))]
        assert analyse_disjunct(literals) == {"x": "a", "y": "a"}

    def test_analyse_disjunct_detects_constant_clash(self):
        literals = [
            Eq(Var("x"), Var("y")),
            Eq(Var("x"), Const("a")),
            Eq(Var("y"), Const("b")),
        ]
        assert analyse_disjunct(literals) is None

    def test_analyse_disjunct_detects_neq_in_class(self):
        literals = [Eq(Var("x"), Var("y")), Neq(Var("y"), Var("x"))]
        assert analyse_disjunct(literals) is None

    def test_binding_literals_are_name_sorted(self):
        literals = binding_literals({"b": 1, "a": 2})
        assert [l.left.name for l in literals] == ["a", "b"]

    def test_unsatisfiable_under_bindings(self):
        condition = Eq(Var("mode"), Const("premium"))
        assert statically_unsatisfiable_under(condition, {"mode": "basic"})
        assert not statically_unsatisfiable_under(condition, {"mode": "premium"})
        assert not statically_unsatisfiable_under(condition, {})

    def test_unsatisfiable_under_uses_congruence_through_variables(self):
        condition = And(Eq(Var("x"), Var("mode")), Eq(Var("x"), Const("premium")))
        assert statically_unsatisfiable_under(condition, {"mode": "basic"})

    def test_disjunction_needs_every_disjunct_dead(self):
        condition = Or(
            Eq(Var("mode"), Const("premium")), Eq(Var("mode"), Const("basic"))
        )
        assert not statically_unsatisfiable_under(condition, {"mode": "basic"})


# ----------------------------------------------------- environment fixpoint


class TestConstantEnvironment:
    def test_root_env_seeded_from_global_precondition(self):
        facts = compute_dataflow_facts(_pinned_system())
        env = facts.for_task("Main").constant_env
        # mode survives (propagated by every live service); status is
        # overwritten by 'go'; item is havocked (not propagated).
        assert env == {"mode": "basic"}

    def test_non_propagated_variable_repinned_by_every_writer_survives(self):
        pre = And(Eq(Var("status"), NULL), Eq(Var("flag"), Const("on")))
        builder = ArtifactSystemBuilder("repin", _schema(), global_precondition=pre)
        root = builder.task("Main")
        root.variable("status")
        root.variable("flag")
        # flag is not propagated, but the post forces it back to "on".
        root.internal_service(
            "go",
            pre=Eq(Var("status"), NULL),
            post=And(Eq(Var("status"), Const("done")), Eq(Var("flag"), Const("on"))),
        )
        facts = compute_dataflow_facts(builder.build())
        assert facts.for_task("Main").constant_env == {"flag": "on"}

    def test_child_output_targets_are_demoted(self):
        pre = And(Eq(Var("status"), NULL), Eq(Var("result"), NULL))
        builder = ArtifactSystemBuilder("demote", _schema(), global_precondition=pre)
        root = builder.task("Main")
        root.variable("status")
        root.variable("result")
        child = builder.task("Child", parent="Main")
        child.variable("out", output=True)
        child.opening(pre=Eq(Var("status"), NULL))
        child.closing(pre=Eq(Var("out"), Const("x")), output_map={"out": "result"})
        facts = compute_dataflow_facts(builder.build())
        env = facts.for_task("Main").constant_env
        assert "result" not in env
        assert env["status"] is None

    def test_non_root_env_nulls_non_input_variables(self):
        system = _pinned_system()
        env = compute_dataflow_facts(system).for_task("Premium").constant_env
        # cs is nulled at opening but overwritten by cgo, so it is demoted.
        assert env == {}


# --------------------------------------------------------------- dead sets


class TestDeadServices:
    def test_env_dead_service_and_child_detected(self):
        facts = compute_dataflow_facts(_pinned_system("basic"))
        main = facts.for_task("Main")
        assert main.dead_services == ("premium_only",)
        assert main.dead_child_openings == ("Premium",)

    def test_nothing_dead_when_the_pin_matches(self):
        facts = compute_dataflow_facts(_pinned_system("premium"))
        main = facts.for_task("Main")
        assert main.dead_services == ()
        assert main.dead_child_openings == ()

    def test_post_dead_service_detected(self):
        # The pre is satisfiable, but the post contradicts a *propagated*
        # environment binding, so the service still yields zero moves.
        pre = And(Eq(Var("status"), NULL), Eq(Var("mode"), Const("basic")))
        builder = ArtifactSystemBuilder("postdead", _schema(), global_precondition=pre)
        root = builder.task("Main")
        root.variable("status")
        root.variable("mode")
        root.internal_service(
            "impossible",
            pre=Eq(Var("status"), NULL),
            post=Eq(Var("mode"), Const("premium")),
            propagated=["mode"],
        )
        facts = compute_dataflow_facts(builder.build())
        assert facts.for_task("Main").dead_services == ("impossible",)


class TestEnablementSummaries:
    def test_at_most_once_for_consuming_service(self):
        system = _pinned_system()
        main = compute_dataflow_facts(system).for_task("Main")
        # 'go' requires status=null and moves it to "done"; no other live
        # service (and no live child) can restore null.
        assert "go" in main.at_most_once_services

    def test_mutually_exclusive_pairs(self):
        pre = Eq(Var("status"), NULL)
        builder = ArtifactSystemBuilder("mutex", _schema(), global_precondition=pre)
        root = builder.task("Main")
        root.variable("status")
        root.internal_service(
            "start",
            pre=Eq(Var("status"), NULL),
            post=Or(Eq(Var("status"), Const("x")), Eq(Var("status"), Const("y"))),
        )
        root.internal_service(
            "a", pre=Eq(Var("status"), Const("x")), post=Eq(Var("status"), NULL)
        )
        root.internal_service(
            "b", pre=Eq(Var("status"), Const("y")), post=Eq(Var("status"), NULL)
        )
        facts = compute_dataflow_facts(builder.build())
        main = facts.for_task("Main")
        assert main.dead_services == ()
        assert ("a", "b") in main.mutually_exclusive

    def test_footprints(self):
        system = _pinned_system()
        main = compute_dataflow_facts(system).for_task("Main")
        by_name = {f.service: f for f in main.footprints}
        assert by_name["go"].must_read == ("status",)
        # Everything not propagated may be havocked.
        assert by_name["go"].may_write == ("item", "status")


# ------------------------------------------------- write-only (VA504 facts)


class TestWrittenNeverRead:
    def test_constant_store_never_read_is_flagged(self):
        pre = And(Eq(Var("status"), NULL), Eq(Var("log"), NULL))
        builder = ArtifactSystemBuilder("deadstore", _schema(), global_precondition=pre)
        root = builder.task("Main")
        root.variable("status")
        root.variable("log")
        root.internal_service(
            "go",
            pre=Eq(Var("status"), NULL),
            post=And(Eq(Var("status"), Const("done")), Eq(Var("log"), Const("written"))),
        )
        facts = compute_dataflow_facts(builder.build())
        assert facts.for_task("Main").written_never_read == ("log",)

    def test_variable_copy_is_not_a_store(self):
        pre = And(Eq(Var("status"), NULL), Eq(Var("other"), NULL))
        builder = ArtifactSystemBuilder("copy", _schema(), global_precondition=pre)
        root = builder.task("Main")
        root.variable("status")
        root.variable("other")
        root.internal_service(
            "go", pre=Eq(Var("status"), NULL), post=Eq(Var("status"), Var("other"))
        )
        facts = compute_dataflow_facts(builder.build())
        assert facts.for_task("Main").written_never_read == ()

    def test_atom_bound_variable_is_a_navigation_binding(self):
        pre = And(Eq(Var("item"), NULL), Eq(Var("price"), NULL))
        builder = ArtifactSystemBuilder("nav", _schema(), global_precondition=pre)
        root = builder.task("Main")
        root.id_variable("item", "ITEMS")
        root.variable("price")
        root.internal_service(
            "lookup",
            pre=Eq(Var("price"), NULL),
            post=And(
                RelationAtom("ITEMS", [Var("item"), Var("price")]),
                Eq(Var("price"), Const("0")),
            ),
        )
        facts = compute_dataflow_facts(builder.build())
        assert facts.for_task("Main").written_never_read == ()


# --------------------------------------------------------- diagnostics ride


class TestDiagnostics:
    def test_va302_fires_for_propagation_dead_service_only(self):
        diagnostics, _ = analyze_system(_pinned_system())
        va302 = [d for d in diagnostics if d.code == "VA302"]
        wheres = sorted(d.where for d in va302)
        assert wheres == [
            "task 'Main' / service 'premium_only'",
            "task 'Premium' / opening guard",
        ]
        # VA203 is silent: each guard is satisfiable in isolation.
        assert not [d for d in diagnostics if d.code == "VA203" and "premium" in d.where]

    def test_va302_does_not_double_report_plain_unsat_guards(self):
        builder = ArtifactSystemBuilder("plain", _schema())
        root = builder.task("Main")
        root.variable("status")
        root.internal_service(
            "dead",
            pre=And(Eq(Var("status"), Const("a")), Eq(Var("status"), Const("b"))),
            post=Eq(Var("status"), Const("x")),
        )
        diagnostics, _ = analyze_system(builder.build())
        codes = [d.code for d in diagnostics if "dead" in d.where]
        assert "VA203" in codes
        assert "VA302" not in codes

    def test_va504_fires_for_dead_store(self):
        pre = And(Eq(Var("status"), NULL), Eq(Var("log"), NULL))
        builder = ArtifactSystemBuilder("deadstore", _schema(), global_precondition=pre)
        root = builder.task("Main")
        root.variable("status")
        root.variable("log")
        root.internal_service(
            "go",
            pre=Eq(Var("status"), NULL),
            post=And(Eq(Var("status"), Const("done")), Eq(Var("log"), Const("x"))),
        )
        diagnostics, _ = analyze_system(builder.build())
        va504 = [d for d in diagnostics if d.code == "VA504"]
        assert [d.where for d in va504] == ["task 'Main' / variable 'log'"]


# -------------------------------------------------------------- determinism


class TestDeterminism:
    def test_as_dict_is_stable_across_recomputation(self):
        system = _pinned_system()
        first = compute_dataflow_facts(system).as_dict()
        second = compute_dataflow_facts(system).as_dict()
        assert first == second
        main = first["Main"]
        assert main["dead_services"] == sorted(main["dead_services"])
        assert list(main["constant_env"]) == sorted(main["constant_env"])


# ----------------------------------- expression-level contradiction checker


class TestConjunctionContradictsBindings:
    def _universe(self):
        schema = _schema()
        return ExpressionUniverse(schema, {"mode": None, "status": None})

    def test_direct_constant_clash(self):
        universe = self._universe()
        conjunction = [
            (universe.variable("mode"), universe.add_constant("premium"), EQ)
        ]
        assert conjunction_contradicts_bindings(
            conjunction, {"mode": "basic"}, universe
        )
        assert not conjunction_contradicts_bindings(
            conjunction, {"mode": "premium"}, universe
        )

    def test_neq_against_binding(self):
        universe = self._universe()
        conjunction = [
            (universe.variable("mode"), universe.add_constant("basic"), NEQ)
        ]
        assert conjunction_contradicts_bindings(
            conjunction, {"mode": "basic"}, universe
        )

    def test_transitive_clash_through_variables(self):
        universe = self._universe()
        conjunction = [
            (universe.variable("status"), universe.variable("mode"), EQ),
            (universe.variable("status"), universe.add_constant("premium"), EQ),
        ]
        assert conjunction_contradicts_bindings(
            conjunction, {"mode": "basic"}, universe
        )

    def test_satisfiable_conjunction_is_kept(self):
        universe = self._universe()
        conjunction = [
            (universe.variable("status"), universe.add_constant("done"), EQ)
        ]
        assert not conjunction_contradicts_bindings(
            conjunction, {"mode": "basic"}, universe
        )
