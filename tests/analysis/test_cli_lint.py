"""``python -m repro lint``: exit codes, text rendering, and ``--json``."""

from __future__ import annotations

import json

from repro import cli
from repro.has.builder import ArtifactSystemBuilder
from repro.has.conditions import Const, Eq, NULL, Var
from repro.has.schema import DatabaseSchema
from repro.ltl import LTLFOProperty, parse_ltl
from repro.spec import SpecBundle


def _clean_bundle():
    schema = DatabaseSchema.from_dict({"ITEMS": {"price": None}})
    builder = ArtifactSystemBuilder("lintable", schema)
    root = builder.task("Main")
    root.id_variable("item", "ITEMS")
    root.variable("status")
    root.variable("other")
    root.internal_service(
        "go", pre=Eq(Var("status"), NULL), post=Eq(Var("status"), Var("other"))
    )
    system = builder.build()
    ltl_property = LTLFOProperty(
        "Main",
        parse_ltl("G(phi)"),
        {"phi": Eq(Var("status"), Const("done"))},
        name="p",
    )
    return SpecBundle(system, [ltl_property])


def _write_spec(tmp_path, name="spec.json", mutate=None):
    data = _clean_bundle().to_dict()
    if mutate is not None:
        mutate(data)
    path = tmp_path / name
    path.write_text(json.dumps(data), encoding="utf-8")
    return str(path)


def test_lint_clean_spec_exits_zero(tmp_path, capsys):
    path = _write_spec(tmp_path)
    assert cli.main(["lint", path]) == 0
    out = capsys.readouterr().out
    assert "0 error(s), 0 warning(s)" in out


def test_lint_warnings_only_exits_zero(tmp_path, capsys):
    def add_trivial_property(data):
        data["properties"].append(
            {"name": "triv", "task": "Main", "formula": "true", "conditions": {}}
        )

    path = _write_spec(tmp_path, mutate=add_trivial_property)
    assert cli.main(["lint", path]) == 0
    out = capsys.readouterr().out
    assert "VA402" in out
    assert "1 warning(s)" in out


def test_lint_errors_exit_one(tmp_path, capsys):
    def break_task_reference(data):
        data["properties"][0]["task"] = "Nope"

    path = _write_spec(tmp_path, mutate=break_task_reference)
    assert cli.main(["lint", path]) == 1
    out = capsys.readouterr().out
    assert "VA102" in out
    assert "error" in out


def test_lint_json_output_is_machine_readable(tmp_path, capsys):
    def break_task_reference(data):
        data["properties"][0]["task"] = "Nope"

    path = _write_spec(tmp_path, mutate=break_task_reference)
    assert cli.main(["lint", path, "--json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert set(data) == {"version", "diagnostics", "facts", "summary"}
    assert data["version"] == 1
    assert data["summary"]["errors"] == 1
    [diagnostic] = data["diagnostics"]
    assert diagnostic["code"] == "VA102"
    assert diagnostic["severity"] == "error"
    assert diagnostic["name"] == "unknown-task"


def test_lint_missing_file_exits_two(tmp_path, capsys):
    assert cli.main(["lint", str(tmp_path / "absent.json")]) == 2
    assert "error" in capsys.readouterr().err


def test_lint_unparseable_spec_exits_two(tmp_path, capsys):
    path = tmp_path / "garbage.json"
    path.write_text("{not json", encoding="utf-8")
    assert cli.main(["lint", str(path)]) == 2
    assert "error" in capsys.readouterr().err


def test_verify_accepts_no_static_pruning_flag(tmp_path, capsys):
    """The kill-switch flag parses, runs, and changes no verdict."""
    path = _write_spec(tmp_path)
    code_off = cli.main(["verify", path, "--no-static-pruning", "--json"])
    out_off = json.loads(capsys.readouterr().out)
    code_on = cli.main(["verify", path, "--json"])
    out_on = json.loads(capsys.readouterr().out)
    assert code_off == code_on
    assert out_off["outcomes"] == out_on["outcomes"]
