"""Golden-file suite for the static analyzer's diagnostics.

One fixture per VA code: a minimal spec that triggers it, plus the exact
JSON diagnostics it must produce.  The fixtures pin the public contract --
codes, severities, messages and ``where`` paths are all load-bearing (the
lint CLI, the 422 submit body and the per-code server metrics key on
them), so any drift fails here first.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import CODE_NAMES, ERROR, Diagnostic, analyze
from repro.spec import SpecBundle

GOLDEN_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "golden")
GOLDEN_FILES = sorted(f for f in os.listdir(GOLDEN_DIR) if f.endswith(".json"))


def _load(filename):
    with open(os.path.join(GOLDEN_DIR, filename), "r", encoding="utf-8") as fh:
        return json.load(fh)


def test_every_code_has_a_golden_fixture():
    covered = {_load(f)["code"] for f in GOLDEN_FILES}
    assert covered == set(CODE_NAMES), (
        "every registered VA code needs a golden fixture; missing: "
        f"{sorted(set(CODE_NAMES) - covered)}, stray: {sorted(covered - set(CODE_NAMES))}"
    )


@pytest.mark.parametrize("filename", GOLDEN_FILES)
def test_golden_diagnostics(filename):
    golden = _load(filename)
    code = golden["code"]
    # validate=False: the error fixtures would be rejected at load otherwise.
    bundle = SpecBundle.from_dict(golden["spec"], validate=False)
    report = analyze(bundle.system, bundle.properties)
    actual = [d.as_dict() for d in report.diagnostics if d.code == code]
    assert actual == golden["expected"]


@pytest.mark.parametrize("filename", GOLDEN_FILES)
def test_golden_severity_matches_code_band(filename):
    """VA1xx are errors (submit-rejecting); everything else warns."""
    golden = _load(filename)
    for entry in golden["expected"]:
        expected_severity = ERROR if entry["code"].startswith("VA1") else "warning"
        assert entry["severity"] == expected_severity
        assert entry["name"] == CODE_NAMES[entry["code"]]


@pytest.mark.parametrize("filename", GOLDEN_FILES)
def test_golden_diagnostics_roundtrip(filename):
    for entry in _load(filename)["expected"]:
        assert Diagnostic.from_dict(entry).as_dict() == entry
