"""Property-based soundness audit of the dataflow enablement summary.

Seeded ``random`` (no wall clock, no hypothesis dependency): generate small
random specifications, run a *bounded, unpruned* symbolic search collecting
which services actually fire, and assert the dataflow summary is a sound
over-approximation:

* no service that fires is reported dead, and no child that opens is
  reported dead-opening;
* every constant-environment binding is entailed by every reachable
  partial isomorphism type (extending the type with ``var != const``
  contradicts it);
* no at-most-once service fires twice on any explored path.

Failures print the seed, so a counterexample reproduces exactly.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

import pytest

from repro.analysis.dataflow import compute_dataflow_facts
from repro.core.isotypes import NEQ
from repro.core.options import VerifierOptions
from repro.core.transitions import SymbolicTransitionSystem
from repro.has.builder import ArtifactSystemBuilder
from repro.has.conditions import And, Condition, Const, Eq, Neq, Or, Var
from repro.has.schema import DatabaseSchema

_CONSTANTS = ("alpha", "beta", "gamma", None)
_VARIABLES = ("x", "y", "z")
_STATE_BOUND = 160


def _random_literal(rng: random.Random, variables) -> Condition:
    left = Var(rng.choice(variables))
    if rng.random() < 0.7:
        right = Const(rng.choice(_CONSTANTS))
    else:
        right = Var(rng.choice(variables))
    return Eq(left, right) if rng.random() < 0.8 else Neq(left, right)

def _random_condition(rng: random.Random, variables=_VARIABLES, depth: int = 2) -> Condition:
    if depth == 0 or rng.random() < 0.4:
        return _random_literal(rng, variables)
    combiner = And if rng.random() < 0.6 else Or
    return combiner(
        _random_condition(rng, variables, depth - 1),
        _random_condition(rng, variables, depth - 1),
    )

def _random_system(rng: random.Random):
    schema = DatabaseSchema.from_dict({"R": {"a": None}})
    builder = ArtifactSystemBuilder(f"random-{rng.randrange(10**6)}", schema)
    root = builder.task("Main")
    for name in _VARIABLES:
        root.variable(name)
    for index in range(rng.randrange(2, 5)):
        propagated = [v for v in _VARIABLES if rng.random() < 0.4]
        root.internal_service(
            f"s{index}",
            pre=_random_condition(rng),
            post=_random_condition(rng),
            propagated=propagated,
        )
    if rng.random() < 0.6:
        child = builder.task("Child", parent="Main")
        child.variable("c")
        child.internal_service(
            "cstep",
            pre=_random_condition(rng, ("c",)),
            post=_random_condition(rng, ("c",)),
        )
        child.opening(pre=_random_condition(rng))
    return builder.build()


def _bounded_search(system, task_name: str):
    """Breadth-first unpruned bounded search of one task's local runs.

    Returns ``(fired service names, visited taus, per-path service counts)``.
    The per-path counts record, for each explored path, how often each
    internal service fired along it (for the at-most-once audit); paths are
    cut at the state bound, which can only *under*-count firings -- the
    sound direction for auditing an over-approximation.
    """
    options = VerifierOptions(static_pruning=False, dataflow_pruning=False)
    transitions = SymbolicTransitionSystem(system, task_name, options=options)
    fired: Set[str] = set()
    taus = []
    seen: Set[object] = set()
    max_fires: Dict[str, int] = {}
    queue: List[Tuple[object, Dict[str, int]]] = []
    for move in transitions.initial_moves():
        queue.append((move.psi, {}))
    while queue and len(seen) < _STATE_BOUND:
        psi, counts = queue.pop(0)
        if psi in seen:  # PSI is a frozen dataclass; hash dedups revisits
            continue
        seen.add(psi)
        taus.append(psi.tau)
        for move in transitions.successors(psi):
            if move.psi is psi:  # the terminal stutter step
                continue
            fired.add(move.service)
            next_counts = dict(counts)
            next_counts[move.service] = next_counts.get(move.service, 0) + 1
            if next_counts[move.service] > max_fires.get(move.service, 0):
                max_fires[move.service] = next_counts[move.service]
            queue.append((move.psi, next_counts))
    return fired, taus, max_fires


@pytest.mark.parametrize("seed", range(25))
def test_dataflow_summary_over_approximates_bounded_search(seed):
    rng = random.Random(seed)
    system = _random_system(rng)
    facts = compute_dataflow_facts(system)
    for task_name in system.task_names:
        task_facts = facts.for_task(task_name)
        fired, taus, max_fires = _bounded_search(system, task_name)

        # 1. Dead services must not fire.
        dead_fired = fired & set(task_facts.dead_services)
        assert not dead_fired, f"seed={seed} task={task_name}: dead fired {dead_fired}"

        # 2. Dead child openings must not open.
        for child in task_facts.dead_child_openings:
            opening = system.opening_service(child).name
            assert opening not in fired, (
                f"seed={seed} task={task_name}: dead child {child!r} opened"
            )

        # 3. The constant environment is entailed by every reachable type:
        #    adding var != const must contradict it.
        transitions = SymbolicTransitionSystem(
            system,
            task_name,
            options=VerifierOptions(static_pruning=False, dataflow_pruning=False),
        )
        universe = transitions.universe
        for name in sorted(task_facts.constant_env):
            value = task_facts.constant_env[name]
            disagreement = [(universe.variable(name), universe.add_constant(value), NEQ)]
            for tau in taus:
                assert tau.extend(disagreement) is None, (
                    f"seed={seed} task={task_name}: env binding {name}={value!r} "
                    "not entailed by a reachable state"
                )

        # 4. At-most-once services never fire twice on one explored path.
        for service in task_facts.at_most_once_services:
            assert max_fires.get(service, 0) <= 1, (
                f"seed={seed} task={task_name}: at-most-once service "
                f"{service!r} fired {max_fires[service]} times on one path"
            )


@pytest.mark.parametrize("seed", range(12))
def test_dataflow_pruning_preserves_bounded_search_moves(seed):
    """With pruning ON, the *same* bounded search produces the same moves:
    the pass only skips work that yields zero moves."""
    rng = random.Random(1000 + seed)
    system = _random_system(rng)
    for task_name in system.task_names:
        frontiers = []
        for pruning in (False, True):
            options = VerifierOptions(static_pruning=False, dataflow_pruning=pruning)
            transitions = SymbolicTransitionSystem(system, task_name, options=options)
            moves: List[Tuple[str, object]] = []
            seen: Set[object] = set()
            queue = [m.psi for m in transitions.initial_moves()]
            while queue and len(seen) < _STATE_BOUND:
                psi = queue.pop(0)
                if psi in seen:
                    continue
                seen.add(psi)
                for move in transitions.successors(psi):
                    if move.psi is psi:
                        continue
                    moves.append((move.service, move.psi))
                    queue.append(move.psi)
            frontiers.append(moves)
        assert frontiers[0] == frontiers[1], f"seed={1000 + seed} task={task_name}"
