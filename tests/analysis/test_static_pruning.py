"""The pre-search pruning pass: verdict preservation, the kill-switch, and
the options-schema compatibility rules.

The fast tests prove parity on targeted systems (dead child subtrees,
trivially-true properties); the slow differential sweep proves it across
the whole benchmark corpus -- every verdict must be identical with
``static_pruning`` on and off.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.options import VerifierOptions
from repro.core.verifier import Verifier
from repro.has.builder import ArtifactSystemBuilder
from repro.has.conditions import And, Const, Eq, NULL, Neq, TrueCond, Var
from repro.has.schema import DatabaseSchema
from repro.ltl import LTLFOProperty, parse_ltl


def _system_with_dead_child():
    schema = DatabaseSchema.from_dict({"ITEMS": {"price": None}})
    builder = ArtifactSystemBuilder("pruned", schema)
    root = builder.task("Main")
    root.id_variable("item", "ITEMS")
    root.variable("status")
    root.internal_service(
        "pick", pre=Eq(Var("status"), NULL), post=Eq(Var("status"), Const("picked"))
    )
    root.internal_service(
        "ship",
        pre=Eq(Var("status"), Const("picked")),
        post=Eq(Var("status"), Const("shipped")),
    )
    child = builder.task("Dead", parent="Main")
    child.variable("cstatus")
    child.internal_service(
        "cgo", pre=Eq(Var("cstatus"), NULL), post=Eq(Var("cstatus"), Const("x"))
    )
    child.opening(
        pre=And(Eq(Var("status"), Const("a")), Eq(Var("status"), Const("b")))
    )
    child.closing(pre=TrueCond())
    return builder.build()


def _verify_both_ways(system, ltl_property, **budget):
    """(pruned result, unpruned result) for one property."""
    pruned = Verifier(system, VerifierOptions(**budget)).verify(ltl_property)
    unpruned = Verifier(
        system, VerifierOptions(static_pruning=False, **budget)
    ).verify(ltl_property)
    return pruned, unpruned


def _verify_four_ways(system, ltl_property, **budget):
    """One result per (static_pruning, dataflow_pruning) combination."""
    results = {}
    for static, dataflow in itertools.product((True, False), repeat=2):
        options = VerifierOptions(
            static_pruning=static, dataflow_pruning=dataflow, **budget
        )
        results[(static, dataflow)] = Verifier(system, options).verify(ltl_property)
    return results


def _pinned_mode_system():
    """A system whose global precondition pins ``mode`` to a value that
    disables one service and one child: satisfiable in isolation (so the
    static pass keeps them) but dead under the propagated constant."""
    schema = DatabaseSchema.from_dict({"ITEMS": {"price": None}})
    builder = ArtifactSystemBuilder(
        "pinned",
        schema,
        global_precondition=And(
            And(Eq(Var("mode"), Const("basic")), Eq(Var("status"), NULL)),
            Eq(Var("item"), NULL),
        ),
    )
    root = builder.task("Main")
    root.id_variable("item", "ITEMS")
    root.variable("status")
    root.variable("mode")
    root.internal_service(
        "go",
        pre=Eq(Var("status"), NULL),
        post=Eq(Var("status"), Const("done")),
        propagated=["mode"],
    )
    root.internal_service(
        "premium_only",
        pre=Eq(Var("mode"), Const("premium")),
        post=Eq(Var("status"), Const("upgraded")),
        propagated=["mode"],
    )
    child = builder.task("Premium", parent="Main")
    child.variable("cstatus")
    child.internal_service(
        "cgo", pre=Eq(Var("cstatus"), NULL), post=Eq(Var("cstatus"), Const("x"))
    )
    child.opening(pre=Eq(Var("mode"), Const("premium")))
    child.closing(pre=TrueCond())
    return builder.build()


class TestVerdictPreservation:
    def test_dead_child_subtree_pruning_preserves_verdicts(self):
        system = _system_with_dead_child()
        properties = [
            LTLFOProperty(
                "Main",
                parse_ltl("G ns"),
                {"ns": Neq(Var("status"), Const("shipped"))},
                name="never-shipped",
            ),
            LTLFOProperty(
                "Main",
                parse_ltl("F p"),
                {"p": Eq(Var("status"), Const("picked"))},
                name="eventually-picked",
            ),
        ]
        for ltl_property in properties:
            pruned, unpruned = _verify_both_ways(system, ltl_property)
            assert pruned.outcome == unpruned.outcome, ltl_property.name
            # The dead subtree never contributed states, so the explored
            # space is identical, not merely verdict-equivalent.
            assert pruned.stats.states_explored == unpruned.stats.states_explored

    def test_trivially_true_property_short_circuits_to_satisfied(self):
        system = _system_with_dead_child()
        trivial = LTLFOProperty("Main", parse_ltl("true"), {}, name="triv")
        pruned, unpruned = _verify_both_ways(system, trivial)
        assert pruned.satisfied and unpruned.satisfied
        assert pruned.stats.states_explored == 0

    def test_short_circuit_still_validates_the_property(self):
        """Error behaviour is identical with pruning on or off."""
        system = _system_with_dead_child()
        bad = LTLFOProperty(
            "Main", parse_ltl("true & zap"), {}, name="bad-service-ref"
        )
        for options in (VerifierOptions(), VerifierOptions(static_pruning=False)):
            with pytest.raises(ValueError, match="zap"):
                Verifier(system, options).verify(bad)


class TestFourWayParity:
    """static_pruning x dataflow_pruning: all four configurations must agree
    on the verdict AND the explored-state count -- both passes only remove
    work that provably yields zero symbolic moves."""

    def _assert_parity(self, system, properties):
        for ltl_property in properties:
            results = _verify_four_ways(system, ltl_property)
            baseline = results[(False, False)]
            for combo, result in sorted(results.items()):
                assert result.outcome == baseline.outcome, (
                    f"{ltl_property.name} {combo}: {result.outcome}"
                    f" != {baseline.outcome}"
                )
                assert (
                    result.stats.states_explored == baseline.stats.states_explored
                ), f"{ltl_property.name} {combo}"

    def test_dead_child_system(self):
        system = _system_with_dead_child()
        self._assert_parity(
            system,
            [
                LTLFOProperty(
                    "Main",
                    parse_ltl("G ns"),
                    {"ns": Neq(Var("status"), Const("shipped"))},
                    name="never-shipped",
                ),
                LTLFOProperty(
                    "Main",
                    parse_ltl("F p"),
                    {"p": Eq(Var("status"), Const("picked"))},
                    name="eventually-picked",
                ),
            ],
        )

    def test_pinned_mode_system(self):
        """The dataflow-only kills: 'premium_only' and the 'Premium' child are
        statically satisfiable, so only constant propagation can prune them."""
        system = _pinned_mode_system()
        from repro.analysis import compute_dataflow_facts

        facts = compute_dataflow_facts(system).for_task("Main")
        assert "premium_only" in facts.dead_services
        assert "Premium" in facts.dead_child_openings
        self._assert_parity(
            system,
            [
                LTLFOProperty(
                    "Main",
                    parse_ltl("F d"),
                    {"d": Eq(Var("status"), Const("done"))},
                    name="eventually-done",
                ),
                LTLFOProperty(
                    "Main",
                    parse_ltl("G nu"),
                    {"nu": Neq(Var("status"), Const("upgraded"))},
                    name="never-upgraded",
                ),
            ],
        )

    def test_dataflow_pruning_actually_skips_work(self):
        system = _pinned_mode_system()
        ltl_property = LTLFOProperty(
            "Main",
            parse_ltl("G nu"),
            {"nu": Neq(Var("status"), Const("upgraded"))},
            name="never-upgraded",
        )
        result = Verifier(system, VerifierOptions()).verify(ltl_property)
        stats = result.stats.as_dict()
        assert stats.get("dataflow_services_skipped", 0) > 0
        off = Verifier(
            system, VerifierOptions(dataflow_pruning=False)
        ).verify(ltl_property)
        assert "dataflow_services_skipped" not in off.stats.as_dict()


class TestOptionsCompatibility:
    def test_static_pruning_defaults_on_and_is_a_known_key(self):
        options = VerifierOptions()
        assert options.static_pruning is True
        assert "static_pruning" in VerifierOptions.known_keys()

    def test_default_omitted_from_canonical_dict(self):
        """Fingerprint compatibility: the default must serialize exactly as
        the pre-static-pruning schema did, or every persisted result of
        every earlier store would be orphaned."""
        data = VerifierOptions().as_dict()
        assert "static_pruning" not in data
        assert VerifierOptions.from_dict(data).static_pruning is True

    def test_disabled_value_round_trips(self):
        data = VerifierOptions(static_pruning=False).as_dict()
        assert data["static_pruning"] is False
        assert VerifierOptions.from_dict(data).static_pruning is False

    def test_dataflow_pruning_defaults_on_and_is_a_known_key(self):
        options = VerifierOptions()
        assert options.dataflow_pruning is True
        assert "dataflow_pruning" in VerifierOptions.known_keys()

    def test_dataflow_default_omitted_from_canonical_dict(self):
        """Same fingerprint rule as static_pruning: the default serializes
        exactly as the older schemas did."""
        data = VerifierOptions().as_dict()
        assert "dataflow_pruning" not in data
        assert VerifierOptions.from_dict(data).dataflow_pruning is True

    def test_dataflow_disabled_value_round_trips(self):
        data = VerifierOptions(dataflow_pruning=False).as_dict()
        assert data["dataflow_pruning"] is False
        assert VerifierOptions.from_dict(data).dataflow_pruning is False


# ------------------------------------------------------------- differential


@pytest.mark.slow
def test_differential_pruning_over_benchmark_corpus():
    """Every benchmark workflow x generated property: identical verdicts
    (and search sizes) with the pruning pass on and off."""
    from repro.benchmark.properties import LTL_TEMPLATES, generate_properties
    from repro.benchmark.realworld import REAL_WORKFLOW_FACTORIES

    # The same bounded budget on both sides keeps unknowns deterministic:
    # the searches are identical modulo pruned-dead subtrees, so a budget
    # exhaustion hits at the same state count with the pass on or off.
    budget = dict(max_states=1500, max_repeated_states=1500, timeout_seconds=30)
    compared = 0
    for name, factory in sorted(REAL_WORKFLOW_FACTORIES.items()):
        system = factory()
        for ltl_property in generate_properties(system, templates=LTL_TEMPLATES):
            pruned, unpruned = _verify_both_ways(system, ltl_property, **budget)
            assert pruned.outcome == unpruned.outcome, (
                f"{name}/{ltl_property.name}: pruned={pruned.outcome}"
                f" unpruned={unpruned.outcome}"
            )
            assert (
                pruned.stats.states_explored == unpruned.stats.states_explored
            ), f"{name}/{ltl_property.name}"
            compared += 1
    assert compared >= 20, "corpus unexpectedly small -- differential audit is hollow"


@pytest.mark.slow
def test_four_way_differential_over_benchmark_corpus():
    """The full 2x2 grid (static_pruning x dataflow_pruning) over every
    benchmark workflow x generated property: identical verdicts and
    explored-state counts in all four configurations."""
    from repro.benchmark.properties import LTL_TEMPLATES, generate_properties
    from repro.benchmark.realworld import REAL_WORKFLOW_FACTORIES

    budget = dict(max_states=1500, max_repeated_states=1500, timeout_seconds=30)
    compared = 0
    for name, factory in sorted(REAL_WORKFLOW_FACTORIES.items()):
        system = factory()
        for ltl_property in generate_properties(system, templates=LTL_TEMPLATES):
            results = _verify_four_ways(system, ltl_property, **budget)
            baseline = results[(False, False)]
            for combo, result in sorted(results.items()):
                assert result.outcome == baseline.outcome, (
                    f"{name}/{ltl_property.name} {combo}:"
                    f" {result.outcome} != {baseline.outcome}"
                )
                assert (
                    result.stats.states_explored == baseline.stats.states_explored
                ), f"{name}/{ltl_property.name} {combo}"
            compared += 1
    assert compared >= 20, "corpus unexpectedly small -- differential audit is hollow"
