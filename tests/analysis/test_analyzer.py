"""Unit tests of :mod:`repro.analysis`: the sound unsatisfiability checker,
the static facts, and the report/diagnostic plumbing."""

from __future__ import annotations

import pytest

from repro.analysis import (
    SpecRejectedError,
    analyze,
    analyze_property,
    compute_static_facts,
    statically_unsatisfiable,
)
from repro.analysis.diagnostics import Diagnostic, sort_diagnostics
from repro.has.builder import ArtifactSystemBuilder
from repro.has.conditions import (
    And,
    Const,
    Eq,
    FalseCond,
    Neq,
    NULL,
    Not,
    Or,
    TrueCond,
    Var,
)
from repro.has.schema import DatabaseSchema
from repro.ltl import LTLFOProperty, parse_ltl


# ------------------------------------------------------------- satisfiability


class TestStaticallyUnsatisfiable:
    def test_structural_false(self):
        assert statically_unsatisfiable(FalseCond())
        assert statically_unsatisfiable(And(TrueCond(), FalseCond()))

    def test_true_and_plain_atoms_are_satisfiable(self):
        assert not statically_unsatisfiable(TrueCond())
        assert not statically_unsatisfiable(Eq(Var("x"), Const("a")))
        assert not statically_unsatisfiable(Neq(Var("x"), Const("a")))

    def test_two_constants_on_one_variable(self):
        condition = And(Eq(Var("x"), Const("a")), Eq(Var("x"), Const("b")))
        assert statically_unsatisfiable(condition)

    def test_equal_constants_are_consistent(self):
        condition = And(Eq(Var("x"), Const("a")), Eq(Var("x"), Const("a")))
        assert not statically_unsatisfiable(condition)

    def test_neq_inside_equality_class(self):
        condition = And(Eq(Var("x"), Var("y")), Neq(Var("x"), Var("y")))
        assert statically_unsatisfiable(condition)

    def test_neq_through_transitive_chain(self):
        condition = And(
            And(Eq(Var("x"), Var("y")), Eq(Var("y"), Var("z"))),
            Neq(Var("x"), Var("z")),
        )
        assert statically_unsatisfiable(condition)

    def test_disjunction_needs_every_branch_dead(self):
        dead = And(Eq(Var("x"), Const("a")), Eq(Var("x"), Const("b")))
        alive = Eq(Var("x"), Const("a"))
        assert statically_unsatisfiable(Or(dead, And(dead, TrueCond())))
        assert not statically_unsatisfiable(Or(dead, alive))

    def test_negation_is_normalised_before_the_check(self):
        # !(x != a) & x = b  ==>  x = a & x = b  ==> dead
        condition = And(Not(Neq(Var("x"), Const("a"))), Eq(Var("x"), Const("b")))
        assert statically_unsatisfiable(condition)


# ---------------------------------------------------------------- static facts


def _system_with_dead_child():
    schema = DatabaseSchema.from_dict({"ITEMS": {"price": None}})
    builder = ArtifactSystemBuilder("facts", schema)
    root = builder.task("Main")
    root.id_variable("item", "ITEMS")
    root.variable("status")
    root.internal_service(
        "go", pre=Eq(Var("status"), NULL), post=Eq(Var("status"), Const("done"))
    )
    child = builder.task("Dead", parent="Main")
    child.variable("cstatus")
    child.internal_service(
        "cgo", pre=Eq(Var("cstatus"), NULL), post=Eq(Var("cstatus"), Const("x"))
    )
    child.opening(
        pre=And(Eq(Var("status"), Const("a")), Eq(Var("status"), Const("b")))
    )
    child.closing(pre=TrueCond())
    grandchild = builder.task("Below", parent="Dead")
    grandchild.variable("gstatus")
    grandchild.internal_service(
        "ggo", pre=Eq(Var("gstatus"), NULL), post=Eq(Var("gstatus"), Const("x"))
    )
    grandchild.closing(pre=TrueCond())
    return builder.build()


class TestComputeStaticFacts:
    def test_unsat_opening_closes_the_subtree(self):
        facts = compute_static_facts(_system_with_dead_child())
        assert facts.unsat_opening_tasks == ("Dead",)
        # "Below" has a satisfiable guard but sits under a dead parent.
        assert facts.reachable_tasks == ("Main",)
        assert not facts.root_precondition_unsatisfiable

    def test_trivially_true_formula_is_satisfied(self):
        system = _system_with_dead_child()
        trivial = LTLFOProperty("Main", parse_ltl("true"), {}, name="triv")
        real = LTLFOProperty(
            "Main",
            parse_ltl("G p"),
            {"p": Neq(Var("status"), Const("zzz"))},
            name="real",
        )
        facts = compute_static_facts(system, (trivial, real))
        assert facts.property_verdicts == {"triv": "satisfied"}

    def test_constant_bindings_forced_by_global_precondition(self):
        system = _system_with_dead_child()
        facts = compute_static_facts(system)
        # The builder's generated precondition nulls every root variable.
        assert facts.constant_bindings["Main"]["status"] is None


# ----------------------------------------------------------------- reporting


def test_analyze_report_shape_and_summary():
    system = _system_with_dead_child()
    report = analyze(system, ())
    data = report.as_dict()
    assert set(data) == {"version", "diagnostics", "facts", "summary"}
    assert data["version"] == 1
    assert data["summary"]["errors"] == len(report.errors)
    assert data["summary"]["warnings"] == len(report.warnings)
    assert not report.has_errors
    codes = [d["code"] for d in data["diagnostics"]]
    assert codes == sorted(codes), "diagnostics must be severity/code ranked"


def test_analyze_property_unknown_task_short_circuits():
    system = _system_with_dead_child()
    bad = LTLFOProperty("Nope", parse_ltl("G p"), {"p": TrueCond()}, name="bad")
    diagnostics = analyze_property(system, bad)
    assert [d.code for d in diagnostics] == ["VA102"]


def test_spec_rejected_error_keeps_errors_only():
    error_diag = Diagnostic("VA103", "error", "boom", where="here")
    warning_diag = Diagnostic("VA501", "warning", "meh", where="there")
    error = SpecRejectedError([warning_diag, error_diag])
    assert error.diagnostics == [error_diag]
    assert "VA103" in str(error)
    assert isinstance(error, ValueError)


def test_sort_diagnostics_ranks_errors_first():
    diagnostics = [
        Diagnostic("VA501", "warning", "w"),
        Diagnostic("VA102", "error", "e"),
        Diagnostic("VA203", "warning", "w2"),
    ]
    assert [d.code for d in sort_diagnostics(diagnostics)] == [
        "VA102",
        "VA203",
        "VA501",
    ]
