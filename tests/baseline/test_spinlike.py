"""Tests for the Spin-like explicit-state baseline verifier."""

import pytest

from repro import Verifier, VerifierOptions
from repro.baseline import SpinLikeVerifier
from repro.has.conditions import Const, Eq, Neq, NULL, Var
from repro.ltl.ltlfo import LTLFOProperty
from repro.ltl.parser import parse_ltl


def prop(task, text, name=None, **conditions):
    return LTLFOProperty(task, parse_ltl(text), conditions=conditions, name=name or text)


class TestVerdicts:
    def test_false_baseline_violated(self, tiny_system):
        result = SpinLikeVerifier(tiny_system).verify(prop("Main", "false"))
        assert result.violated
        assert result.states_explored > 0

    def test_safety_violation_detected(self, tiny_system):
        result = SpinLikeVerifier(tiny_system).verify(
            prop("Main", "G p", p=Neq(Var("status"), Const("shipped")))
        )
        assert result.violated

    def test_safety_satisfied(self, tiny_system):
        result = SpinLikeVerifier(tiny_system).verify(
            prop("Main", "G p", p=Neq(Var("status"), Const("bogus")))
        )
        assert result.satisfied

    def test_service_propositions(self, tiny_system):
        result = SpinLikeVerifier(tiny_system).verify(
            LTLFOProperty("Main", parse_ltl("(!ship) U pick"), name="order")
        )
        assert result.satisfied

    def test_timeout_reports_failure(self, tiny_system):
        result = SpinLikeVerifier(tiny_system, timeout_seconds=0.0).verify(prop("Main", "false"))
        assert result.failed
        assert result.outcome == "unknown"

    def test_state_budget_reports_failure(self, tiny_system):
        result = SpinLikeVerifier(tiny_system, max_states=1).verify(prop("Main", "false"))
        assert result.failed


class TestAgreementWithSymbolicVerifier:
    """On data-independent properties both verifiers must agree."""

    PROPERTIES = [
        ("false", {}),
        ("G p", {"p": ("status", "!=", "shipped")}),
        ("G p", {"p": ("status", "!=", "bogus")}),
        ("F p", {"p": ("status", "=", "shipped")}),
        ("G (p -> F q)", {"p": ("status", "=", "picked"), "q": ("status", "=", "shipped")}),
    ]

    @staticmethod
    def _condition(spec):
        variable, op, constant = spec
        if op == "=":
            return Eq(Var(variable), Const(constant))
        return Neq(Var(variable), Const(constant))

    @pytest.mark.parametrize("text,conditions", PROPERTIES)
    def test_agree_on_tiny_system(self, tiny_system, text, conditions):
        ltl_property = LTLFOProperty(
            "Main",
            parse_ltl(text),
            conditions={k: self._condition(v) for k, v in conditions.items()},
            name=text,
        )
        symbolic = Verifier(tiny_system, VerifierOptions(max_states=20_000)).verify(ltl_property)
        baseline = SpinLikeVerifier(tiny_system, max_states=50_000).verify(ltl_property)
        assert not symbolic.unknown and not baseline.failed
        assert symbolic.violated == baseline.violated

    def test_baseline_explores_more_states_than_symbolic(self, tiny_system):
        """The explicit-state baseline enumerates concrete valuations, so its
        state count exceeds the symbolic verifier's on the same input."""
        ltl_property = prop("Main", "G p", p=Neq(Var("status"), Const("bogus")))
        symbolic = Verifier(tiny_system, VerifierOptions(max_states=20_000)).verify(ltl_property)
        baseline = SpinLikeVerifier(tiny_system, max_states=100_000).verify(ltl_property)
        assert baseline.states_explored > symbolic.stats.states_explored
