"""Unit tests for the symbolic transition system (Section 3.2 / Appendix A)."""

import pytest

from repro.core.expressions import ConstExpr, NavExpr
from repro.core.options import VerifierOptions
from repro.core.psi import PSI
from repro.core.transitions import CLOSED_MARKER, SymbolicTransitionSystem
from repro.has.builder import ArtifactSystemBuilder
from repro.has.conditions import And, Const, Eq, Neq, NULL, Or, Var
from repro.has.runs import TERMINATED_SERVICE
from repro.has.schema import DatabaseSchema
from repro.ltl.ltlfo import GlobalVariable, LTLFOProperty
from repro.ltl.parser import parse_ltl
from repro.has.types import IdType


def _sts(system, task=None, ltl_property=None, **options):
    return SymbolicTransitionSystem(
        system, task or system.root, ltl_property, VerifierOptions(**options)
    )


class TestInitialMoves:
    def test_root_starts_all_null(self, tiny_system):
        sts = _sts(tiny_system)
        moves = sts.initial_moves()
        assert len(moves) == 1
        tau = moves[0].psi.tau
        assert tau.same_class(NavExpr("item"), ConstExpr(None))
        assert tau.same_class(NavExpr("status"), ConstExpr(None))
        assert moves[0].service == "open_Main"

    def test_initial_children_inactive_and_not_closed(self, tiny_system):
        sts = _sts(tiny_system)
        psi = sts.initial_moves()[0].psi
        assert not psi.any_child_active() or psi.child_map() == {CLOSED_MARKER: False}
        assert not psi.child_active(CLOSED_MARKER)

    def test_global_precondition_respected(self, items_schema):
        builder = ArtifactSystemBuilder(
            "guarded", items_schema, global_precondition=Eq(Var("status"), Const("boot"))
        )
        task = builder.task("Main")
        task.variable("status")
        task.internal_service("noop")
        system = builder.build()
        moves = _sts(system).initial_moves()
        assert len(moves) == 1
        assert moves[0].psi.tau.same_class(NavExpr("status"), ConstExpr("boot"))


class TestInternalServices:
    def test_pre_condition_guards_applicability(self, tiny_system):
        sts = _sts(tiny_system)
        initial = sts.initial_moves()[0].psi
        services = {move.service for move in sts.successors(initial)}
        # Only `pick` is applicable from the all-null state (plus nothing else).
        assert "pick" in services
        assert "ship" not in services
        assert "reset" not in services

    def test_post_condition_constrains_successor(self, tiny_system):
        sts = _sts(tiny_system)
        initial = sts.initial_moves()[0].psi
        [pick] = [move for move in sts.successors(initial) if move.service == "pick"]
        assert pick.psi.tau.same_class(NavExpr("status"), ConstExpr("picked"))
        assert pick.psi.tau.known_distinct(NavExpr("item"), ConstExpr(None))

    def test_propagation_projects_away_unpropagated(self, tiny_system):
        sts = _sts(tiny_system)
        initial = sts.initial_moves()[0].psi
        [pick] = [m for m in sts.successors(initial) if m.service == "pick"]
        [ship] = [m for m in sts.successors(pick.psi) if m.service == "ship"]
        # `ship` does not propagate `item`, so the item != null constraint is gone.
        assert not ship.psi.tau.known_distinct(NavExpr("item"), ConstExpr(None))
        assert ship.psi.tau.same_class(NavExpr("status"), ConstExpr("shipped"))


class TestArtifactRelations:
    def test_insert_increments_counter(self, relation_system):
        sts = _sts(relation_system)
        initial = sts.initial_moves()[0].psi
        [create] = [m for m in sts.successors(initial) if m.service == "create"]
        [stash] = [m for m in sts.successors(create.psi) if m.service == "stash"]
        assert sum(value for _k, value in stash.psi.counters) == 1
        [(key, _value)] = list(stash.psi.counters)
        assert key[0] == "POOL"

    def test_retrieve_decrements_counter_and_restores_constraints(self, relation_system):
        sts = _sts(relation_system)
        initial = sts.initial_moves()[0].psi
        [create] = [m for m in sts.successors(initial) if m.service == "create"]
        [stash] = [m for m in sts.successors(create.psi) if m.service == "stash"]
        grabs = [m for m in sts.successors(stash.psi) if m.service == "grab"]
        assert grabs, "retrieval must be possible when the relation is non-empty"
        grabbed = grabs[0].psi
        # The retrieved tuple is removed (zero counters are dropped from the PSI).
        assert grabbed.counters == ()
        # The stored tuple's constraints are restored onto the variables.
        assert grabbed.tau.same_class(NavExpr("status"), ConstExpr("new"))

    def test_retrieve_impossible_when_empty(self, relation_system):
        sts = _sts(relation_system)
        initial = sts.initial_moves()[0].psi
        services = {m.service for m in sts.successors(initial)}
        assert "grab" not in services

    def test_no_set_option_ignores_relations(self, relation_system):
        sts = _sts(relation_system, use_artifact_relations=False)
        initial = sts.initial_moves()[0].psi
        [create] = [m for m in sts.successors(initial) if m.service == "create"]
        [stash] = [m for m in sts.successors(create.psi) if m.service == "stash"]
        assert stash.psi.counters == ()


class TestChildrenAndClosing:
    @pytest.fixture
    def parent_child_system(self, items_schema):
        builder = ArtifactSystemBuilder("pc", items_schema)
        parent = builder.task("Parent")
        parent.id_variable("item", "ITEMS")
        parent.variable("phase")
        parent.internal_service(
            "start", pre=Eq(Var("phase"), NULL), post=Eq(Var("phase"), Const("ready"))
        )
        child = builder.task("Child", parent="Parent")
        child.id_variable("item", "ITEMS", input=True)
        child.variable("phase", output=True)
        child.opening(pre=Eq(Var("phase"), Const("ready")), input_map={"item": "item"})
        child.closing(pre=Eq(Var("phase"), Const("done")), output_map={"phase": "phase"})
        child.internal_service("work", post=Eq(Var("phase"), Const("done")), propagated=["item"])
        return builder.build()

    def test_child_opening_guard(self, parent_child_system):
        sts = _sts(parent_child_system, task="Parent")
        initial = sts.initial_moves()[0].psi
        # Before `start`, the opening guard phase = "ready" is satisfiable only
        # by extension -- but phase = null contradicts it, so no opening.
        services = {m.service for m in sts.successors(initial)}
        assert "open_Child" not in services
        [start] = [m for m in sts.successors(initial) if m.service == "start"]
        services_after = {m.service for m in sts.successors(start.psi)}
        assert "open_Child" in services_after

    def test_internal_services_blocked_while_child_active(self, parent_child_system):
        sts = _sts(parent_child_system, task="Parent")
        initial = sts.initial_moves()[0].psi
        [start] = [m for m in sts.successors(initial) if m.service == "start"]
        [opened] = [m for m in sts.successors(start.psi) if m.service == "open_Child"]
        assert opened.psi.child_active("Child")
        services = {m.service for m in sts.successors(opened.psi)}
        assert "start" not in services
        assert "close_Child" in services

    def test_child_closing_overwrites_returned_variables(self, parent_child_system):
        sts = _sts(parent_child_system, task="Parent")
        initial = sts.initial_moves()[0].psi
        [start] = [m for m in sts.successors(initial) if m.service == "start"]
        [opened] = [m for m in sts.successors(start.psi) if m.service == "open_Child"]
        [closed] = [m for m in sts.successors(opened.psi) if m.service == "close_Child"]
        assert not closed.psi.child_active("Child")
        # The returned variable `phase` is overwritten: its old constraint is gone.
        assert not closed.psi.tau.same_class(NavExpr("phase"), ConstExpr("ready"))

    def test_own_closing_and_terminal_stutter(self, items_schema):
        builder = ArtifactSystemBuilder("closable", items_schema)
        root = builder.task("Root")
        root.variable("phase")
        root.internal_service("go", post=Eq(Var("phase"), Const("done")))
        root.closing(pre=Eq(Var("phase"), Const("done")))
        system = builder.build()
        sts = _sts(system)
        initial = sts.initial_moves()[0].psi
        [go] = [m for m in sts.successors(initial) if m.service == "go"]
        closing = [m for m in sts.successors(go.psi) if m.service == "close_Root"]
        assert closing
        closed_psi = closing[0].psi
        assert closed_psi.child_active(CLOSED_MARKER)
        stutter = sts.successors(closed_psi)
        assert [m.service for m in stutter] == [TERMINATED_SERVICE]
        assert stutter[0].psi == closed_psi


class TestGlobalVariables:
    def test_global_variables_join_the_universe_and_survive_projection(self, tiny_system):
        ltl_property = LTLFOProperty(
            "Main",
            parse_ltl("G p"),
            conditions={"p": Eq(Var("item"), Var("g"))},
            global_variables=[GlobalVariable("g", IdType("ITEMS"))],
        )
        sts = _sts(tiny_system, ltl_property=ltl_property)
        assert sts.universe.has_root("g")
        initial = sts.initial_moves()[0].psi
        constrained = sts.extend(initial.tau, [(NavExpr("g"), ConstExpr(None), "!=")])
        psi = initial.with_tau(constrained)
        # `pick` propagates nothing, yet the global variable constraint survives.
        [pick] = [m for m in sts.successors(psi) if m.service == "pick"]
        assert pick.psi.tau.known_distinct(NavExpr("g"), ConstExpr(None))

    def test_global_variable_name_clash_rejected(self, tiny_system):
        ltl_property = LTLFOProperty(
            "Main",
            parse_ltl("G p"),
            conditions={"p": Eq(Var("item"), Var("item"))},
            global_variables=[GlobalVariable("item", IdType("ITEMS"))],
        )
        with pytest.raises(ValueError):
            _sts(tiny_system, ltl_property=ltl_property)
