"""Unit and property-based tests for partial isomorphism types."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.expressions import ConstExpr, ExpressionUniverse, NavExpr
from repro.core.isotypes import EQ, NEQ, PartialIsoType, empty_type
from repro.has.schema import DatabaseSchema
from repro.has.types import IdType, VALUE


@pytest.fixture
def universe(navigation_schema):
    universe = ExpressionUniverse(
        navigation_schema,
        {
            "x": IdType("CUSTOMERS"),
            "y": IdType("CUSTOMERS"),
            "r": IdType("CREDIT_RECORD"),
            "v": VALUE,
            "w": VALUE,
        },
    )
    universe.add_constant("Good")
    universe.add_constant("Bad")
    return universe


def var(name):
    return NavExpr(name)


class TestExtension:
    def test_empty_type_is_consistent(self, universe):
        tau = empty_type(universe)
        assert tau.extend([]) is not None

    def test_simple_equality(self, universe):
        tau = empty_type(universe).extend([(var("x"), var("y"), EQ)])
        assert tau is not None
        assert tau.same_class(var("x"), var("y"))

    def test_equality_and_inequality_conflict(self, universe):
        tau = empty_type(universe).extend([(var("x"), var("y"), EQ)])
        assert tau.extend([(var("x"), var("y"), NEQ)]) is None

    def test_inequality_then_equality_conflict(self, universe):
        tau = empty_type(universe).extend([(var("x"), var("y"), NEQ)])
        assert tau.extend([(var("x"), var("y"), EQ)]) is None

    def test_transitive_conflict(self, universe):
        tau = empty_type(universe).extend(
            [(var("x"), var("y"), EQ), (var("y"), var("r").child("status") , NEQ)]
        )
        assert tau is not None

    def test_distinct_constants_cannot_be_equal(self, universe):
        good, bad = ConstExpr("Good"), ConstExpr("Bad")
        tau = empty_type(universe).extend([(var("v"), good, EQ)])
        assert tau.extend([(var("v"), bad, EQ)]) is None

    def test_same_constant_twice_is_fine(self, universe):
        good = ConstExpr("Good")
        tau = empty_type(universe).extend([(var("v"), good, EQ), (var("w"), good, EQ)])
        assert tau is not None
        assert tau.same_class(var("v"), var("w"))

    def test_congruence_closure(self, universe):
        tau = empty_type(universe).extend([(var("x"), var("y"), EQ)])
        assert tau.same_class(var("x").child("record"), var("y").child("record"))
        assert tau.same_class(
            var("x").child("record").child("status"),
            var("y").child("record").child("status"),
        )

    def test_congruence_detects_conflict(self, universe):
        # x.name = "Good", y.name = "Bad", then x = y must fail via congruence.
        tau = empty_type(universe).extend(
            [
                (var("x").child("name"), ConstExpr("Good"), EQ),
                (var("y").child("name"), ConstExpr("Bad"), EQ),
            ]
        )
        assert tau is not None
        assert tau.extend([(var("x"), var("y"), EQ)]) is None

    def test_incompatible_id_types_forced_to_null(self, universe):
        # x : CUSTOMERS.ID and r : CREDIT_RECORD.ID can only be equal if both null.
        tau = empty_type(universe).extend([(var("x"), var("r"), EQ)])
        assert tau is not None
        assert tau.same_class(var("x"), ConstExpr(None))

    def test_incompatible_types_with_nonnull_conflict(self, universe):
        tau = empty_type(universe).extend([(var("x"), ConstExpr(None), NEQ)])
        assert tau.extend([(var("x"), var("r"), EQ)]) is None

    def test_null_vs_constant_distinct(self, universe):
        tau = empty_type(universe).extend([(var("v"), ConstExpr(None), EQ)])
        assert tau.extend([(var("v"), ConstExpr("Good"), EQ)]) is None


class TestQueries:
    def test_known_distinct_via_edge(self, universe):
        tau = empty_type(universe).extend([(var("x"), var("y"), NEQ)])
        assert tau.known_distinct(var("x"), var("y"))
        assert not tau.known_distinct(var("x"), var("r"))

    def test_known_distinct_via_constants(self, universe):
        tau = empty_type(universe).extend(
            [(var("v"), ConstExpr("Good"), EQ), (var("w"), ConstExpr("Bad"), EQ)]
        )
        assert tau.known_distinct(var("v"), var("w"))

    def test_constraints_listing(self, universe):
        tau = empty_type(universe).extend([(var("x"), var("y"), EQ), (var("v"), var("w"), NEQ)])
        ops = {op for _l, _r, op in tau.constraints()}
        assert ops == {EQ, NEQ}

    def test_equality_and_hash_are_structural(self, universe):
        tau1 = empty_type(universe).extend([(var("x"), var("y"), EQ), (var("v"), var("w"), NEQ)])
        tau2 = empty_type(universe).extend([(var("v"), var("w"), NEQ), (var("y"), var("x"), EQ)])
        assert tau1 == tau2
        assert hash(tau1) == hash(tau2)

    def test_distinct_types_not_equal(self, universe):
        tau1 = empty_type(universe).extend([(var("x"), var("y"), EQ)])
        tau2 = empty_type(universe).extend([(var("x"), var("y"), NEQ)])
        assert tau1 != tau2


class TestEntailment:
    def test_entails_subset(self, universe):
        big = empty_type(universe).extend(
            [(var("x"), var("y"), EQ), (var("v"), ConstExpr("Good"), EQ)]
        )
        small = empty_type(universe).extend([(var("x"), var("y"), EQ)])
        assert big.entails(small)
        assert not small.entails(big)

    def test_everything_entails_empty(self, universe):
        tau = empty_type(universe).extend([(var("x"), var("y"), NEQ)])
        assert tau.entails(empty_type(universe))

    def test_entailment_uses_transitivity(self, universe):
        big = empty_type(universe).extend([(var("x"), var("y"), EQ), (var("y"), var("x"), EQ)])
        small = empty_type(universe).extend([(var("x"), var("y"), EQ)])
        assert big.entails(small)

    def test_entailment_of_neq_through_constants(self, universe):
        big = empty_type(universe).extend(
            [(var("v"), ConstExpr("Good"), EQ), (var("w"), ConstExpr("Bad"), EQ)]
        )
        small = empty_type(universe).extend([(var("v"), var("w"), NEQ)])
        assert big.entails(small)

    def test_reflexive(self, universe):
        tau = empty_type(universe).extend([(var("x"), var("y"), EQ)])
        assert tau.entails(tau)


class TestProjection:
    def test_projection_keeps_only_selected_roots(self, universe):
        tau = empty_type(universe).extend(
            [(var("x"), var("y"), EQ), (var("v"), ConstExpr("Good"), EQ)]
        )
        projected = tau.project(["x", "y"])
        assert projected.same_class(var("x"), var("y"))
        assert not projected.same_class(var("v"), ConstExpr("Good"))

    def test_projection_keeps_navigation_constraints(self, universe):
        tau = empty_type(universe).extend(
            [(var("x").child("record").child("status"), ConstExpr("Good"), EQ)]
        )
        projected = tau.project(["x"])
        assert projected.same_class(
            var("x").child("record").child("status"), ConstExpr("Good")
        )

    def test_projection_keeps_neq_between_kept_roots(self, universe):
        tau = empty_type(universe).extend([(var("x"), var("y"), NEQ)])
        assert tau.project(["x", "y"]).known_distinct(var("x"), var("y"))
        assert not tau.project(["x"]).known_distinct(var("x"), var("y"))

    def test_projection_never_fails_on_consistent_types(self, universe):
        tau = empty_type(universe).extend(
            [
                (var("x"), ConstExpr(None), EQ),
                (var("r"), ConstExpr(None), EQ),
                (var("v"), ConstExpr("Good"), EQ),
                (var("w"), var("v"), NEQ),
            ]
        )
        for roots in (["x"], ["x", "r"], ["v", "w"], [], ["x", "y", "r", "v", "w"]):
            assert tau.project(roots) is not None

    def test_original_entails_projection(self, universe):
        tau = empty_type(universe).extend(
            [(var("x"), var("y"), EQ), (var("v"), var("w"), NEQ), (var("r"), ConstExpr(None), EQ)]
        )
        assert tau.entails(tau.project(["x", "v", "w"]))


class TestRenaming:
    def test_rename_roots_between_universes(self, navigation_schema, universe):
        target = ExpressionUniverse(
            navigation_schema, {"a": IdType("CUSTOMERS"), "b": VALUE}
        )
        tau = empty_type(universe).extend(
            [(var("x").child("name"), var("v"), EQ), (var("v"), ConstExpr("Good"), NEQ)]
        )
        renamed = tau.rename_roots({"x": "a", "v": "b"}, target)
        assert renamed is not None
        assert renamed.same_class(NavExpr("a", ("name",)), NavExpr("b"))
        assert renamed.known_distinct(NavExpr("b"), ConstExpr("Good"))

    def test_rename_drops_unmapped_roots(self, navigation_schema, universe):
        target = ExpressionUniverse(navigation_schema, {"a": IdType("CUSTOMERS")})
        tau = empty_type(universe).extend(
            [(var("x"), var("y"), EQ), (var("v"), ConstExpr("Good"), EQ)]
        )
        renamed = tau.rename_roots({"x": "a"}, target)
        assert renamed is not None
        assert renamed.members() <= {NavExpr("a")} | set(renamed.universe.constants) | {
            NavExpr("a", ("name",)), NavExpr("a", ("record",)), NavExpr("a", ("record", "status"))
        }


# ---------------------------------------------------------------------------
# Property-based tests on random constraint sets
# ---------------------------------------------------------------------------

_EXPR_NAMES = ["x", "y", "v", "w"]


def _constraint_strategy():
    expressions = st.sampled_from(_EXPR_NAMES + ["Good", "Bad", "null"])
    ops = st.sampled_from([EQ, NEQ])
    return st.tuples(expressions, expressions, ops)


def _to_expression(token):
    if token == "null":
        return ConstExpr(None)
    if token in ("Good", "Bad"):
        return ConstExpr(token)
    return NavExpr(token)


@st.composite
def constraint_lists(draw):
    return [draw(_constraint_strategy()) for _ in range(draw(st.integers(0, 8)))]


class TestPropertyBased:
    @given(constraint_lists())
    @settings(max_examples=150, deadline=None)
    def test_extension_is_monotone_and_idempotent(self, navigation_schema_constraints):
        schema = DatabaseSchema.from_dict(
            {"CUSTOMERS": {"name": None, "record": "CREDIT_RECORD"}, "CREDIT_RECORD": {"status": None}}
        )
        universe = ExpressionUniverse(
            schema,
            {"x": IdType("CUSTOMERS"), "y": IdType("CUSTOMERS"), "v": VALUE, "w": VALUE},
        )
        constraints = [
            (_to_expression(a), _to_expression(b), op)
            for a, b, op in navigation_schema_constraints
            if not (a == b and op == NEQ)
        ]
        tau = empty_type(universe).extend(constraints)
        if tau is None:
            return
        # Extending with the same constraints again changes nothing.
        again = tau.extend(constraints)
        assert again is not None and again == tau
        # The extension entails every individual constraint's singleton type.
        for constraint in constraints:
            single = empty_type(universe).extend([constraint])
            if single is not None:
                assert tau.entails(single)
        # Projection onto all roots keeps everything.
        full_projection = tau.project(["x", "y", "v", "w"])
        assert full_projection == tau
