"""Unit tests for navigation expressions and the expression universe."""

import pytest

from repro.core.expressions import ConstExpr, ExpressionUniverse, NULL_EXPR, NavExpr
from repro.has.schema import DatabaseSchema
from repro.has.types import IdType, VALUE


@pytest.fixture
def universe(navigation_schema):
    return ExpressionUniverse(
        navigation_schema,
        {"cust": IdType("CUSTOMERS"), "status": VALUE},
    )


class TestConstExpr:
    def test_null(self):
        assert NULL_EXPR.is_null
        assert str(NULL_EXPR) == "null"

    def test_string_rendering(self):
        assert str(ConstExpr("Good")) == '"Good"'
        assert str(ConstExpr(3)) == "3"


class TestNavExpr:
    def test_child_appends_path(self):
        assert NavExpr("x").child("record") == NavExpr("x", ("record",))

    def test_str(self):
        assert str(NavExpr("x", ("record", "status"))) == "x.record.status"

    def test_is_variable(self):
        assert NavExpr("x").is_variable
        assert not NavExpr("x", ("a",)).is_variable


class TestExpressionUniverse:
    def test_contains_navigations_up_to_foreign_keys(self, universe):
        assert universe.contains(NavExpr("cust"))
        assert universe.contains(NavExpr("cust", ("name",)))
        assert universe.contains(NavExpr("cust", ("record",)))
        assert universe.contains(NavExpr("cust", ("record", "status")))

    def test_value_variables_have_no_navigations(self, universe):
        assert universe.navigations_of(NavExpr("status")) == {}

    def test_navigate(self, universe):
        record = universe.navigate(NavExpr("cust"), "record")
        assert record == NavExpr("cust", ("record",))
        assert universe.navigate(record, "status") == NavExpr("cust", ("record", "status"))
        assert universe.navigate(NavExpr("status"), "anything") is None

    def test_types(self, universe):
        assert universe.type_of(NavExpr("cust")) == IdType("CUSTOMERS")
        assert universe.type_of(NavExpr("cust", ("record",))) == IdType("CREDIT_RECORD")
        assert universe.type_of(NavExpr("cust", ("name",))) == VALUE

    def test_add_constant_idempotent(self, universe):
        first = universe.add_constant("Good")
        second = universe.add_constant("Good")
        assert first == second
        assert first in universe.constants

    def test_null_constant_present_by_default(self, universe):
        assert NULL_EXPR in universe.constants

    def test_variable_lookup(self, universe):
        assert universe.variable("cust") == NavExpr("cust")
        with pytest.raises(KeyError):
            universe.variable("missing")

    def test_expressions_rooted_at(self, universe):
        universe.add_constant("Good")
        rooted = universe.expressions_rooted_at(["cust"])
        assert NavExpr("cust", ("record", "status")) in rooted
        assert NavExpr("status") not in rooted
        assert ConstExpr("Good") in rooted  # constants always kept

    def test_size_is_finite_and_reasonable(self, universe):
        # cust + name + record + record.status + status variable + null constant
        assert len(universe) == 6

    def test_root_accessors(self, universe):
        assert set(universe.root_names) == {"cust", "status"}
        assert universe.root_type("cust") == IdType("CUSTOMERS")
        assert universe.has_root("status")
        assert not universe.has_root("nope")
