"""Tests for the constraint-graph static analysis (Section 3.7)."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.expressions import ConstExpr, ExpressionUniverse, NavExpr
from repro.core.flatten import flatten_condition
from repro.core.isotypes import EQ, NEQ
from repro.core.static_analysis import ConstraintFilter, ConstraintGraph, _edge
from repro.has.conditions import And, Const, Eq, Neq, NULL, Or, RelationAtom, Var
from repro.has.schema import DatabaseSchema
from repro.has.types import IdType, VALUE


class TestConstraintGraphBasics:
    def test_paper_example_25_nonviolating_neq(self):
        """Figure 8 (left): (e3, e5) is a non-violating ≠-edge."""
        graph = ConstraintGraph()
        expressions = {name: NavExpr(name) for name in "e1 e2 e3 e4 e5 e6 e7".split()}
        for a, b in [("e1", "e2"), ("e2", "e3"), ("e3", "e4"), ("e4", "e1"), ("e5", "e6"), ("e6", "e7")]:
            graph.add_constraint(expressions[a], expressions[b], EQ)
        graph.add_constraint(expressions["e3"], expressions["e5"], NEQ)
        assert _edge("e3", "e5") in graph.non_violating_neq_edges()

    def test_paper_example_25_nonviolating_eq(self):
        """Figure 8 (right): (e3, e5) is a non-violating =-edge."""
        graph = ConstraintGraph()
        expressions = {name: NavExpr(name) for name in "e1 e2 e3 e4 e5 e6 e7".split()}
        for a, b in [("e1", "e2"), ("e2", "e3"), ("e3", "e4"), ("e4", "e1"),
                     ("e5", "e6"), ("e6", "e7"), ("e3", "e5")]:
            graph.add_constraint(expressions[a], expressions[b], EQ)
        graph.add_constraint(expressions["e2"], expressions["e3"], NEQ)
        graph.add_constraint(expressions["e5"], expressions["e6"], NEQ)
        assert _edge("e3", "e5") in graph.non_violating_eq_edges()
        # Edges on the e2--e3 cycle are violating (they lie on simple paths
        # between the endpoints of the ≠-edge (e2, e3)).
        assert _edge("e2", "e3") in graph.violating_eq_edges()
        assert _edge("e1", "e2") in graph.violating_eq_edges()

    def test_violating_neq_edge_within_component(self):
        graph = ConstraintGraph()
        a, b, c = NavExpr("a"), NavExpr("b"), NavExpr("c")
        graph.add_constraint(a, b, EQ)
        graph.add_constraint(b, c, EQ)
        graph.add_constraint(a, c, NEQ)
        assert _edge("a", "c") not in graph.non_violating_neq_edges()

    def test_constants_are_conflict_pairs(self):
        graph = ConstraintGraph()
        x = NavExpr("x")
        graph.add_constraint(x, ConstExpr("A"), EQ)
        graph.add_constraint(x, ConstExpr("B"), EQ)
        # Both edges lie on the path connecting the two distinct constants.
        assert graph.non_violating_eq_edges() == set()

    def test_isolated_equality_is_nonviolating(self):
        graph = ConstraintGraph()
        graph.add_constraint(NavExpr("x"), NavExpr("y"), EQ)
        assert _edge("x", "y") in graph.non_violating_eq_edges()


def _brute_force_violating_eq_edges(eq_edges, conflict_pairs):
    """Edges lying on some simple path between a conflict pair (exponential check)."""
    nodes = {n for e in eq_edges for n in e}
    adjacency = {n: set() for n in nodes}
    for e in eq_edges:
        a, b = tuple(e)
        adjacency[a].add(b)
        adjacency[b].add(a)

    def simple_paths(source, target):
        stack = [(source, [source])]
        while stack:
            node, path = stack.pop()
            if node == target:
                yield path
                continue
            for neighbour in adjacency[node]:
                if neighbour not in path:
                    stack.append((neighbour, path + [neighbour]))

    violating = set()
    for pair in conflict_pairs:
        u, v = tuple(pair)
        if u not in nodes or v not in nodes:
            continue
        for path in simple_paths(u, v):
            for a, b in zip(path, path[1:]):
                violating.add(frozenset((a, b)))
    return violating & set(eq_edges)


class TestDifferentialAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(40))
    def test_violating_eq_edges_match_brute_force(self, seed):
        rng = random.Random(seed)
        node_names = [f"n{i}" for i in range(rng.randrange(3, 7))]
        graph = ConstraintGraph()
        eq_edges = set()
        for _ in range(rng.randrange(2, 9)):
            a, b = rng.sample(node_names, 2)
            graph.add_constraint(NavExpr(a), NavExpr(b), EQ)
            eq_edges.add(_edge(a, b))
        for _ in range(rng.randrange(0, 3)):
            a, b = rng.sample(node_names, 2)
            if _edge(a, b) not in eq_edges:
                graph.add_constraint(NavExpr(a), NavExpr(b), NEQ)
        expected = _brute_force_violating_eq_edges(graph.eq_edges, graph.conflict_pairs())
        assert graph.violating_eq_edges() == expected


class TestConstraintFilter:
    @pytest.fixture
    def universe(self, navigation_schema):
        return ExpressionUniverse(
            navigation_schema, {"cust": IdType("CUSTOMERS"), "v": VALUE, "w": VALUE}
        )

    def test_filter_drops_only_safe_constraints(self, universe, navigation_schema):
        # v = w never conflicts with anything; v = "A" conflicts with v = "B".
        conditions = [
            Eq(Var("v"), Var("w")),
            Eq(Var("v"), Const("A")),
            Eq(Var("v"), Const("B")),
        ]
        conjunctions = []
        for condition in conditions:
            conjunctions.extend(flatten_condition(condition, universe, navigation_schema))
        filter_ = ConstraintFilter.from_conditions(universe, conjunctions, enabled=True)
        assert filter_.is_droppable((NavExpr("v"), NavExpr("w"), EQ))
        assert not filter_.is_droppable((NavExpr("v"), ConstExpr("A"), EQ))
        assert filter_.dropped_edge_count >= 1

    def test_disabled_filter_keeps_everything(self, universe, navigation_schema):
        conjunctions = flatten_condition(Eq(Var("v"), Var("w")), universe, navigation_schema)
        filter_ = ConstraintFilter.from_conditions(universe, conjunctions, enabled=False)
        assert not filter_.is_droppable((NavExpr("v"), NavExpr("w"), EQ))
        assert filter_.filter_constraints([(NavExpr("v"), NavExpr("w"), EQ)]) == [
            (NavExpr("v"), NavExpr("w"), EQ)
        ]

    def test_congruence_derived_conflicts_block_dropping(self, universe, navigation_schema):
        # cust = cust2 would derive cust.record.status = cust2.record.status;
        # if the derived expressions are constrained by distinct constants the
        # root equality must not be dropped.
        universe2 = ExpressionUniverse(
            navigation_schema,
            {"cust": IdType("CUSTOMERS"), "cust2": IdType("CUSTOMERS")},
        )
        conjunctions = flatten_condition(Eq(Var("cust"), Var("cust2")), universe2, navigation_schema)
        # Add constraints pinning the derived navigation expressions to
        # distinct constants.
        conjunctions.append(
            [(NavExpr("cust", ("record", "status")), ConstExpr("Good"), EQ)]
        )
        conjunctions.append(
            [(NavExpr("cust2", ("record", "status")), ConstExpr("Bad"), EQ)]
        )
        filter_ = ConstraintFilter.from_conditions(universe2, conjunctions, enabled=True)
        assert not filter_.is_droppable((NavExpr("cust"), NavExpr("cust2"), EQ))

    def test_filter_preserves_verification_verdicts(self, tiny_system):
        """Switching SA on/off must not change any verdict on the tiny system."""
        from repro import Verifier, VerifierOptions
        from repro.benchmark.properties import generate_properties

        properties = generate_properties(tiny_system, seed=3)
        with_sa = Verifier(tiny_system, VerifierOptions(static_analysis=True, max_states=5000))
        without_sa = Verifier(tiny_system, VerifierOptions(static_analysis=False, max_states=5000))
        for ltl_property in properties:
            assert (
                with_sa.verify(ltl_property).outcome
                == without_sa.verify(ltl_property).outcome
            )
