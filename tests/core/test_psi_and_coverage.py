"""Unit tests for partial symbolic instances, coverage relations and max-flow."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coverage import covers_leq, covers_preceq, covers_preceq_plus
from repro.core.expressions import ConstExpr, ExpressionUniverse, NavExpr
from repro.core.isotypes import EQ, NEQ, empty_type
from repro.core.maxflow import feasible_assignment, max_bipartite_flow
from repro.core.psi import PSI, counter_add, counter_leq
from repro.has.schema import DatabaseSchema
from repro.has.types import VALUE
from repro.vass.vass import OMEGA


@pytest.fixture
def universe(items_schema):
    return ExpressionUniverse(items_schema, {"x": VALUE, "y": VALUE})


def type_with(universe, *constraints):
    extended = empty_type(universe).extend(list(constraints))
    assert extended is not None
    return extended


class TestCounterArithmetic:
    def test_counter_leq(self):
        assert counter_leq(2, 3)
        assert counter_leq(3, OMEGA)
        assert not counter_leq(OMEGA, 3)
        assert counter_leq(OMEGA, OMEGA)

    def test_counter_add(self):
        assert counter_add(2, 1) == 3
        assert counter_add(OMEGA, -5) is OMEGA


class TestPSI:
    def test_make_drops_zero_counters(self, universe):
        tau = empty_type(universe)
        stored = type_with(universe, (NavExpr("x"), ConstExpr("a"), EQ))
        psi = PSI.make(tau, {("S", stored): 0}, {"child": False})
        assert psi.counters == ()

    def test_counter_delta(self, universe):
        tau = empty_type(universe)
        stored = type_with(universe, (NavExpr("x"), ConstExpr("a"), EQ))
        psi = PSI.make(tau, {("S", stored): 1}, {})
        increased = psi.with_counter_delta(("S", stored), 1)
        assert increased.count(("S", stored)) == 2
        decreased = increased.with_counter_delta(("S", stored), -2)
        assert decreased.count(("S", stored)) == 0
        assert decreased.with_counter_delta(("S", stored), -1) is None

    def test_omega_counters(self, universe):
        tau = empty_type(universe)
        stored = type_with(universe, (NavExpr("x"), ConstExpr("a"), EQ))
        psi = PSI.make(tau, {("S", stored): OMEGA}, {})
        assert psi.has_omega()
        assert psi.total_stored() is OMEGA
        assert psi.with_counter_delta(("S", stored), -1).count(("S", stored)) is OMEGA

    def test_children_updates(self, universe):
        psi = PSI.make(empty_type(universe), {}, {"a": False, "b": False})
        activated = psi.with_child("a", True)
        assert activated.child_active("a")
        assert not activated.child_active("b")
        assert activated.any_child_active()

    def test_equality_and_hash(self, universe):
        tau = type_with(universe, (NavExpr("x"), NavExpr("y"), EQ))
        psi1 = PSI.make(tau, {}, {"a": True})
        psi2 = PSI.make(tau, {}, {"a": True})
        assert psi1 == psi2
        assert hash(psi1) == hash(psi2)

    def test_describe_mentions_counters_and_children(self, universe):
        stored = type_with(universe, (NavExpr("x"), ConstExpr("a"), EQ))
        psi = PSI.make(empty_type(universe), {("S", stored): 2}, {"child": True})
        text = psi.describe()
        assert "S[2" in text
        assert "child" in text


class TestMaxFlow:
    def test_simple_flow(self):
        assert max_bipartite_flow([2], [2], {(0, 0)}) == 2

    def test_insufficient_capacity(self):
        assert max_bipartite_flow([3], [2], {(0, 0)}) == 2

    def test_multiple_sources_and_sinks(self):
        flow = max_bipartite_flow([1, 1], [1, 1], {(0, 0), (1, 0), (1, 1)})
        assert flow == 2

    def test_disconnected_source(self):
        assert max_bipartite_flow([1, 1], [2], {(0, 0)}) == 1

    def test_feasible_assignment_basic(self):
        assert feasible_assignment([1, 1], [2], {(0, 0), (1, 0)})
        assert not feasible_assignment([2], [1], {(0, 0)})

    def test_feasible_assignment_with_omega_capacity(self):
        assert feasible_assignment([5], [OMEGA], {(0, 0)})

    def test_omega_supply_needs_omega_sink(self):
        assert not feasible_assignment([OMEGA], [7], {(0, 0)})
        assert feasible_assignment([OMEGA], [OMEGA], {(0, 0)})

    def test_slack_requirement(self):
        assert feasible_assignment([1], [2], {(0, 0)}, require_slack=True)
        assert not feasible_assignment([2], [2], {(0, 0)}, require_slack=True)
        assert feasible_assignment([2], [OMEGA], {(0, 0)}, require_slack=True)

    def test_empty_problem(self):
        assert feasible_assignment([], [], set())
        assert feasible_assignment([], [1], set())

    @given(
        st.lists(st.integers(0, 4), min_size=1, max_size=4),
        st.lists(st.integers(0, 4), min_size=1, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_flow_bounded_by_supply_and_capacity(self, supplies, capacities):
        edges = {(i, j) for i in range(len(supplies)) for j in range(len(capacities))}
        flow = max_bipartite_flow(supplies, capacities, edges)
        assert flow == min(sum(supplies), sum(capacities))


class TestCoverageRelations:
    def test_leq_requires_identical_tau(self, universe):
        tau1 = type_with(universe, (NavExpr("x"), ConstExpr("a"), EQ))
        tau2 = type_with(universe, (NavExpr("x"), ConstExpr("b"), EQ))
        assert covers_leq(PSI.make(tau1), PSI.make(tau1))
        assert not covers_leq(PSI.make(tau1), PSI.make(tau2))

    def test_leq_counters(self, universe):
        stored = type_with(universe, (NavExpr("x"), ConstExpr("a"), EQ))
        small = PSI.make(empty_type(universe), {("S", stored): 1})
        large = PSI.make(empty_type(universe), {("S", stored): 3})
        assert covers_leq(small, large)
        assert not covers_leq(large, small)
        omega = PSI.make(empty_type(universe), {("S", stored): OMEGA})
        assert covers_leq(large, omega)

    def test_leq_requires_same_children(self, universe):
        tau = empty_type(universe)
        assert not covers_leq(PSI.make(tau, {}, {"c": True}), PSI.make(tau, {}, {"c": False}))

    def test_preceq_allows_less_restrictive_cover(self, universe):
        restrictive = type_with(universe, (NavExpr("x"), ConstExpr("a"), EQ))
        loose = empty_type(universe)
        # The more constrained PSI is covered by the less constrained one.
        assert covers_preceq(PSI.make(restrictive), PSI.make(loose))
        assert not covers_preceq(PSI.make(loose), PSI.make(restrictive))

    def test_preceq_counter_mapping_respects_entailment(self, universe):
        """The paper's Example 23: tuples of a restrictive type map onto looser slots."""
        loose = empty_type(universe)
        tight = type_with(universe, (NavExpr("x"), NavExpr("y"), EQ))
        covered = PSI.make(empty_type(universe), {("S", loose): 2, ("S", tight): 2})
        covering = PSI.make(empty_type(universe), {("S", loose): 3, ("S", tight): 1})
        assert covers_preceq(covered, covering)
        assert not covers_preceq(covering, covered)

    def test_preceq_rejects_insufficient_capacity(self, universe):
        stored = type_with(universe, (NavExpr("x"), ConstExpr("a"), EQ))
        covered = PSI.make(empty_type(universe), {("S", stored): 3})
        covering = PSI.make(empty_type(universe), {("S", stored): 2})
        assert not covers_preceq(covered, covering)

    def test_preceq_respects_relation_names(self, universe):
        stored = type_with(universe, (NavExpr("x"), ConstExpr("a"), EQ))
        covered = PSI.make(empty_type(universe), {("S", stored): 1})
        covering = PSI.make(empty_type(universe), {("T", stored): 1})
        assert not covers_preceq(covered, covering)

    def test_preceq_plus_requires_slack_or_equality(self, universe):
        stored = empty_type(universe)
        one = PSI.make(empty_type(universe), {("S", stored): 1})
        two = PSI.make(empty_type(universe), {("S", stored): 2})
        assert covers_preceq_plus(one, two)      # slack on the covering side
        assert not covers_preceq_plus(two, one)  # insufficient capacity
        assert covers_preceq_plus(one, one)      # equality always allowed
        tight = PSI.make(type_with(universe, (NavExpr("x"), ConstExpr("a"), EQ)))
        loose = PSI.make(empty_type(universe))
        # Without any counters there is no slack, so only equality qualifies.
        assert not covers_preceq_plus(tight, loose)

    def test_leq_implies_preceq(self, universe):
        stored = type_with(universe, (NavExpr("x"), ConstExpr("a"), EQ))
        small = PSI.make(stored, {("S", stored): 1}, {"c": False})
        large = PSI.make(stored, {("S", stored): 2}, {"c": False})
        assert covers_leq(small, large)
        assert covers_preceq(small, large)
