"""Unit tests for condition flattening and symbolic condition evaluation."""

import pytest

from repro.core.expressions import ConstExpr, ExpressionUniverse, NavExpr
from repro.core.flatten import FlattenError, evaluate_condition, flatten_condition
from repro.core.isotypes import EQ, NEQ, empty_type
from repro.has.conditions import And, Const, Eq, FalseCond, Neq, Not, NULL, Or, RelationAtom, TrueCond, Var
from repro.has.types import IdType, VALUE


@pytest.fixture
def universe(navigation_schema):
    return ExpressionUniverse(
        navigation_schema,
        {"cust": IdType("CUSTOMERS"), "rec": IdType("CREDIT_RECORD"), "v": VALUE, "w": VALUE},
    )


class TestFlatten:
    def test_equality_literal(self, universe, navigation_schema):
        conjunctions = flatten_condition(Eq(Var("v"), Var("w")), universe, navigation_schema)
        assert conjunctions == [[(NavExpr("v"), NavExpr("w"), EQ)]]

    def test_inequality_literal(self, universe, navigation_schema):
        conjunctions = flatten_condition(Neq(Var("v"), NULL), universe, navigation_schema)
        assert conjunctions == [[(NavExpr("v"), ConstExpr(None), NEQ)]]

    def test_true_and_false(self, universe, navigation_schema):
        assert flatten_condition(TrueCond(), universe, navigation_schema) == [[]]
        assert flatten_condition(FalseCond(), universe, navigation_schema) == []

    def test_positive_atom_requires_non_null_and_navigations(self, universe, navigation_schema):
        atom = RelationAtom("CREDIT_RECORD", [Var("rec"), Const("Good")])
        [conjunction] = flatten_condition(atom, universe, navigation_schema)
        assert (NavExpr("rec"), ConstExpr(None), NEQ) in conjunction
        assert (NavExpr("rec", ("status",)), ConstExpr("Good"), EQ) in conjunction

    def test_positive_atom_with_variable_argument(self, universe, navigation_schema):
        atom = RelationAtom("CREDIT_RECORD", [Var("rec"), Var("v")])
        [conjunction] = flatten_condition(atom, universe, navigation_schema)
        assert (NavExpr("v"), ConstExpr(None), NEQ) in conjunction
        assert (NavExpr("rec", ("status",)), NavExpr("v"), EQ) in conjunction

    def test_negative_atom_is_disjunction(self, universe, navigation_schema):
        condition = Not(RelationAtom("CREDIT_RECORD", [Var("rec"), Var("v")]))
        conjunctions = flatten_condition(condition, universe, navigation_schema)
        # rec = null, rec.status != v, v = null
        assert len(conjunctions) == 3

    def test_disjunction_produces_multiple_conjunctions(self, universe, navigation_schema):
        condition = Or(Eq(Var("v"), NULL), Eq(Var("w"), NULL))
        assert len(flatten_condition(condition, universe, navigation_schema)) == 2

    def test_foreign_key_atom(self, universe, navigation_schema):
        atom = RelationAtom("CUSTOMERS", [Var("cust"), Var("v"), Var("rec")])
        [conjunction] = flatten_condition(atom, universe, navigation_schema)
        assert (NavExpr("cust", ("record",)), NavExpr("rec"), EQ) in conjunction

    def test_unknown_variable_rejected(self, universe, navigation_schema):
        with pytest.raises(FlattenError):
            flatten_condition(Eq(Var("missing"), NULL), universe, navigation_schema)

    def test_wrong_arity_rejected(self, universe, navigation_schema):
        atom = RelationAtom("CREDIT_RECORD", [Var("rec")])
        with pytest.raises(FlattenError):
            flatten_condition(atom, universe, navigation_schema)

    def test_wrong_id_type_rejected(self, universe, navigation_schema):
        atom = RelationAtom("CREDIT_RECORD", [Var("cust"), Var("v")])
        with pytest.raises(FlattenError):
            flatten_condition(atom, universe, navigation_schema)

    def test_constant_in_id_position_rejected(self, universe, navigation_schema):
        atom = RelationAtom("CREDIT_RECORD", [Const("r1"), Var("v")])
        with pytest.raises(FlattenError):
            flatten_condition(atom, universe, navigation_schema)


class TestEvaluate:
    def test_evaluation_extends_type(self, universe, navigation_schema):
        tau = empty_type(universe)
        results = evaluate_condition(tau, Eq(Var("v"), Const("Good")), universe, navigation_schema)
        assert len(results) == 1
        assert results[0].same_class(NavExpr("v"), ConstExpr("Good"))

    def test_inconsistent_condition_has_no_extension(self, universe, navigation_schema):
        tau = empty_type(universe).extend([(NavExpr("v"), ConstExpr("Good"), EQ)])
        results = evaluate_condition(tau, Eq(Var("v"), Const("Bad")), universe, navigation_schema)
        assert results == []

    def test_disjunction_gives_multiple_extensions(self, universe, navigation_schema):
        tau = empty_type(universe)
        condition = Or(Eq(Var("v"), Const("A")), Eq(Var("v"), Const("B")))
        assert len(evaluate_condition(tau, condition, universe, navigation_schema)) == 2

    def test_duplicate_extensions_removed(self, universe, navigation_schema):
        tau = empty_type(universe).extend([(NavExpr("v"), ConstExpr("A"), EQ)])
        condition = Or(Eq(Var("v"), Const("A")), Eq(Var("v"), Const("A")))
        assert len(evaluate_condition(tau, condition, universe, navigation_schema)) == 1

    def test_credit_check_scenario(self, universe, navigation_schema):
        """The paper's Example 9: the customer referenced by cust has good credit."""
        condition = And(
            RelationAtom("CUSTOMERS", [Var("cust"), Var("v"), Var("rec")]),
            RelationAtom("CREDIT_RECORD", [Var("rec"), Const("Good")]),
        )
        results = evaluate_condition(empty_type(universe), condition, universe, navigation_schema)
        assert len(results) == 1
        extended = results[0]
        # Navigation chain: cust.record.status = "Good".
        assert extended.same_class(NavExpr("cust", ("record", "status")), ConstExpr("Good"))
