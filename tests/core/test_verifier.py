"""Integration tests of the full verifier on small, hand-analysed specifications."""

import pytest

from repro import Verifier, VerificationOutcome, VerifierOptions
from repro.has.builder import ArtifactSystemBuilder
from repro.has.conditions import And, Const, Eq, Neq, NULL, Or, Var
from repro.has.schema import DatabaseSchema
from repro.has.types import IdType
from repro.ltl.ltlfo import GlobalVariable, LTLFOProperty
from repro.ltl.parser import parse_ltl


def prop(task, text, name=None, **conditions):
    return LTLFOProperty(task, parse_ltl(text), conditions=conditions, name=name or text)


@pytest.fixture
def verifier(tiny_system):
    return Verifier(tiny_system, VerifierOptions(max_states=10_000, timeout_seconds=30))


class TestTinySystem:
    """The pick -> ship -> reset loop: every infinite run cycles through the three states."""

    def test_false_is_violated(self, verifier):
        assert verifier.verify(prop("Main", "false")).violated

    def test_true_is_satisfied(self, verifier):
        assert verifier.verify(prop("Main", "true")).satisfied

    def test_safety_violation(self, verifier):
        result = verifier.verify(
            prop("Main", "G p", p=Neq(Var("status"), Const("shipped")))
        )
        assert result.violated
        assert result.counterexample is not None
        assert "ship" in result.counterexample.services()

    def test_liveness_satisfied(self, verifier):
        # Every infinite run ships eventually (the loop is forced).
        assert verifier.verify(prop("Main", "F p", p=Eq(Var("status"), Const("shipped")))).satisfied

    def test_response_satisfied(self, verifier):
        result = verifier.verify(
            prop(
                "Main",
                "G (p -> F q)",
                p=Eq(Var("status"), Const("picked")),
                q=Eq(Var("status"), Const("shipped")),
            )
        )
        assert result.satisfied

    def test_recurrence_satisfied(self, verifier):
        assert verifier.verify(prop("Main", "G F p", p=Eq(Var("status"), Const("picked")))).satisfied

    def test_service_proposition(self, verifier):
        # The `ship` service is always eventually applied in every infinite run.
        assert verifier.verify(LTLFOProperty("Main", parse_ltl("F ship"), name="F ship")).satisfied

    def test_ordering_property_between_services(self, verifier):
        # ship never happens strictly before the first pick.
        result = verifier.verify(LTLFOProperty("Main", parse_ltl("(!ship) U pick"), name="order"))
        assert result.satisfied

    def test_until_violated(self, verifier):
        # status stays null until it is shipped -- false, it becomes "picked" first.
        result = verifier.verify(
            prop(
                "Main",
                "p U q",
                p=Eq(Var("status"), NULL),
                q=Eq(Var("status"), Const("shipped")),
            )
        )
        assert result.violated

    def test_unknown_task_rejected(self, verifier):
        with pytest.raises(ValueError):
            verifier.verify(prop("Nope", "true"))

    def test_unknown_service_proposition_rejected(self, verifier):
        with pytest.raises(ValueError):
            verifier.verify(LTLFOProperty("Main", parse_ltl("F not_a_service"), name="bad"))

    def test_summary_mentions_outcome(self, verifier):
        result = verifier.verify(prop("Main", "true"))
        assert "satisfied" in result.summary()


class TestRelationSystem:
    """Insert / retrieve through the POOL artifact relation."""

    @pytest.fixture
    def verifier(self, relation_system):
        return Verifier(relation_system, VerifierOptions(max_states=20_000, timeout_seconds=30))

    def test_retrieved_items_have_a_known_status(self, verifier):
        # Tuples only enter POOL after `create` (status "new") or `finish`
        # (status "done"), so a retrieved tuple always has one of those states.
        result = verifier.verify(
            LTLFOProperty(
                "Main",
                parse_ltl("G (grab -> (fresh | finished))"),
                conditions={
                    "fresh": Eq(Var("status"), Const("new")),
                    "finished": Eq(Var("status"), Const("done")),
                },
                name="grab-known-status",
            )
        )
        assert result.satisfied

    def test_retrieved_items_are_not_always_fresh(self, verifier):
        # A finished tuple can be stashed and grabbed again, so "every grab
        # yields a fresh tuple" is violated -- the verifier must find it.
        result = verifier.verify(
            LTLFOProperty(
                "Main",
                parse_ltl("G (grab -> fresh)"),
                conditions={"fresh": Eq(Var("status"), Const("new"))},
                name="grab-fresh",
            )
        )
        assert result.violated

    def test_grab_cannot_happen_before_stash(self, verifier):
        result = verifier.verify(LTLFOProperty("Main", parse_ltl("(!grab) U stash"), name="no-grab-first"))
        assert result.satisfied

    def test_finish_reachable(self, verifier):
        result = verifier.verify(
            LTLFOProperty(
                "Main",
                parse_ltl("G (!done)"),
                conditions={"done": Eq(Var("status"), Const("done"))},
                name="never-done",
            )
        )
        assert result.violated


class TestOptionConfigurations:
    """All optimisation configurations must agree on the verdicts."""

    CONFIGS = [
        VerifierOptions(),
        VerifierOptions(state_pruning=False),
        VerifierOptions(data_structure_support=False),
        VerifierOptions(static_analysis=False),
        VerifierOptions(state_pruning=False, data_structure_support=False, static_analysis=False),
    ]

    @pytest.mark.parametrize("config_index", range(len(CONFIGS)))
    def test_configurations_agree_on_tiny_system(self, tiny_system, config_index):
        reference = Verifier(tiny_system, VerifierOptions(max_states=10_000))
        candidate = Verifier(
            tiny_system, self.CONFIGS[config_index].with_(max_states=10_000)
        )
        properties = [
            prop("Main", "G p", p=Neq(Var("status"), Const("shipped"))),
            prop("Main", "F p", p=Eq(Var("status"), Const("shipped"))),
            prop("Main", "G (p -> F q)", p=Eq(Var("status"), Const("picked")),
                 q=Eq(Var("status"), Const("shipped"))),
            LTLFOProperty("Main", parse_ltl("F ship"), name="F ship"),
        ]
        for ltl_property in properties:
            assert (
                reference.verify(ltl_property).outcome
                == candidate.verify(ltl_property).outcome
            )

    @pytest.mark.parametrize("config_index", range(len(CONFIGS)))
    def test_configurations_agree_on_relation_system(self, relation_system, config_index):
        reference = Verifier(relation_system, VerifierOptions(max_states=20_000))
        candidate = Verifier(
            relation_system, self.CONFIGS[config_index].with_(max_states=20_000)
        )
        properties = [
            LTLFOProperty(
                "Main",
                parse_ltl("G (grab -> fresh)"),
                conditions={"fresh": Eq(Var("status"), Const("new"))},
                name="grab-fresh",
            ),
            LTLFOProperty("Main", parse_ltl("(!grab) U stash"), name="no-grab-first"),
        ]
        for ltl_property in properties:
            assert (
                reference.verify(ltl_property).outcome
                == candidate.verify(ltl_property).outcome
            )


class TestGlobalVariableProperties:
    def test_global_variable_links_moments_in_time(self, tiny_system):
        # For every item value g: if some snapshot has item = g and status
        # "picked", then eventually a snapshot has item = g and status shipped?
        # This is FALSE because `ship` does not propagate `item`, so the shipped
        # snapshot may concern a different item.
        verifier = Verifier(tiny_system, VerifierOptions(max_states=20_000, timeout_seconds=30))
        ltl_property = LTLFOProperty(
            "Main",
            parse_ltl("G (picked_g -> F shipped_g)"),
            conditions={
                "picked_g": And(Eq(Var("item"), Var("g")), Eq(Var("status"), Const("picked"))),
                "shipped_g": And(Eq(Var("item"), Var("g")), Eq(Var("status"), Const("shipped"))),
            },
            global_variables=[GlobalVariable("g", IdType("ITEMS"))],
            name="per-item-response",
        )
        assert verifier.verify(ltl_property).violated


class TestCounterexamples:
    def test_counterexample_is_a_run_prefix(self, verifier, tiny_system):
        result = verifier.verify(
            prop("Main", "G p", p=Neq(Var("status"), Const("shipped")))
        )
        assert result.violated
        counterexample = result.counterexample
        assert counterexample.steps[0].service == "open_Main"
        assert len(counterexample) >= 3
        text = counterexample.pretty()
        assert "Violating symbolic run" in text

    def test_satisfied_results_have_no_counterexample(self, verifier):
        result = verifier.verify(prop("Main", "true"))
        assert result.counterexample is None
