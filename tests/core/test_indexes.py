"""Unit and property-based tests for the Trie / inverted-list candidate indexes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.indexes import ActiveStateIndex, EdgeInterner, InvertedListIndex, TrieIndex


class TestEdgeInterner:
    def test_stable_ids(self):
        interner = EdgeInterner()
        first = interner.intern(("a", "b", "="))
        second = interner.intern(("a", "b", "="))
        assert first == second
        assert len(interner) == 1

    def test_intern_set(self):
        interner = EdgeInterner()
        encoded = interner.intern_set([("a",), ("b",), ("a",)])
        assert len(encoded) == 2


class TestInvertedListIndex:
    def test_subsets_of(self):
        index = InvertedListIndex()
        index.add("small", frozenset({1}))
        index.add("medium", frozenset({1, 2}))
        index.add("large", frozenset({1, 2, 3}))
        assert index.subsets_of(frozenset({1, 2})) == {"small", "medium"}

    def test_empty_set_is_subset_of_everything(self):
        index = InvertedListIndex()
        index.add("empty", frozenset())
        assert index.subsets_of(frozenset({5})) == {"empty"}
        assert index.subsets_of(frozenset()) == {"empty"}

    def test_remove(self):
        index = InvertedListIndex()
        index.add("a", frozenset({1, 2}))
        index.remove("a", frozenset({1, 2}))
        assert index.subsets_of(frozenset({1, 2, 3})) == set()


class TestTrieIndex:
    def test_supersets_of(self):
        index = TrieIndex()
        index.add("small", frozenset({1}))
        index.add("medium", frozenset({1, 2}))
        index.add("large", frozenset({1, 2, 3}))
        assert index.supersets_of(frozenset({1, 2})) == {"medium", "large"}

    def test_empty_query_returns_everything(self):
        index = TrieIndex()
        index.add("a", frozenset({1}))
        index.add("b", frozenset())
        assert index.supersets_of(frozenset()) == {"a", "b"}

    def test_remove_prunes_branches(self):
        index = TrieIndex()
        index.add("a", frozenset({1, 2}))
        index.add("b", frozenset({1, 3}))
        index.remove("a", frozenset({1, 2}))
        assert index.supersets_of(frozenset({1})) == {"b"}
        index.remove("missing", frozenset({9}))  # removing unknown items is a no-op

    def test_duplicate_edge_sets(self):
        index = TrieIndex()
        index.add("a", frozenset({1, 2}))
        index.add("b", frozenset({1, 2}))
        assert index.supersets_of(frozenset({1, 2})) == {"a", "b"}


class TestActiveStateIndex:
    def test_candidates(self):
        index = ActiveStateIndex()
        index.add("loose", ["e1"])
        index.add("tight", ["e1", "e2", "e3"])
        # Items whose edges are a subset of the query: candidates that may cover the query.
        assert index.candidates_covering(["e1", "e2"]) == {"loose"}
        # Items whose edges are a superset of the query: candidates the query may cover.
        assert index.candidates_covered_by(["e1", "e2"]) == {"tight"}

    def test_remove_and_contains(self):
        index = ActiveStateIndex()
        index.add(1, ["a"])
        assert 1 in index
        index.remove(1)
        assert 1 not in index
        assert index.candidates_covering(["a"]) == set()
        index.remove(1)  # idempotent

    def test_items_and_len(self):
        index = ActiveStateIndex()
        index.add("x", ["a"])
        index.add("y", ["b"])
        assert set(index.items()) == {"x", "y"}
        assert len(index) == 2


@st.composite
def _collections(draw):
    n_items = draw(st.integers(1, 12))
    items = []
    for i in range(n_items):
        items.append((i, frozenset(draw(st.sets(st.integers(0, 8), max_size=6)))))
    query = frozenset(draw(st.sets(st.integers(0, 8), max_size=6)))
    return items, query


class TestDifferentialAgainstBruteForce:
    @given(_collections())
    @settings(max_examples=120, deadline=None)
    def test_subset_and_superset_queries_match_brute_force(self, data):
        items, query = data
        inverted = InvertedListIndex()
        trie = TrieIndex()
        for item, elements in items:
            inverted.add(item, elements)
            trie.add(item, elements)
        expected_subsets = {item for item, elements in items if elements <= query}
        expected_supersets = {item for item, elements in items if elements >= query}
        assert inverted.subsets_of(query) == expected_subsets
        assert trie.supersets_of(query) == expected_supersets

    @given(_collections())
    @settings(max_examples=60, deadline=None)
    def test_queries_after_random_removals(self, data):
        items, query = data
        rng = random.Random(0)
        inverted = InvertedListIndex()
        trie = TrieIndex()
        for item, elements in items:
            inverted.add(item, elements)
            trie.add(item, elements)
        removed = {item for item, _ in items if rng.random() < 0.5}
        for item, elements in items:
            if item in removed:
                inverted.remove(item, elements)
                trie.remove(item, elements)
        remaining = [(item, elements) for item, elements in items if item not in removed]
        assert inverted.subsets_of(query) == {i for i, e in remaining if e <= query}
        assert trie.supersets_of(query) == {i for i, e in remaining if e >= query}
