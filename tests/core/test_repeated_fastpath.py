"""Audit of the repeated-reachability violation fast path (satellite task).

PR 1 added a fast path that reports a violation when a ≤-coverage cycle
through an accepting state exists on the main ⪯-pruned active set, skipping
the classic Section 3.8 re-search.  A PR 2 review flagged the criterion as
potentially unsound on the ⪯-pruned set.  The differential stress test below
compares the two paths on randomized HAS* instances.

Audit verdict: no *soundness* divergence -- the fast path never contradicts
a completed classic verdict (``violated`` vs ``satisfied``).  It does decide
instances the classic re-search cannot: when the ≤-based re-search exhausts
``max_repeated_states`` and returns ``unknown``, the fast path may still
(correctly) report ``violated`` from the cycle it found on the main active
set -- that completeness gap is the fast path's reason to exist, so the
checker accepts ``unknown -> violated`` refinements and rejects everything
else.  The fast path stays gated behind
``VerifierOptions.repeated_violation_fast_path`` so it can be switched off
in the field (and forced off here for the comparison) without code changes.

Also covers the iterative Tarjan rewrite of ``_states_on_cycles`` (the
recursive version risked C-stack overflow at ``max_states``-sized graphs).
"""

from __future__ import annotations

import pytest

from repro.benchmark.properties import LTL_TEMPLATES, generate_properties
from repro.benchmark.synthetic import SyntheticConfig, generate_synthetic_workflow
from repro.core.options import VerifierOptions
from repro.core.repeated import _states_on_cycles
from repro.core.verifier import Verifier
from repro.has.conditions import Const, Eq, Neq, Var
from repro.ltl import LTLFOProperty, parse_ltl


def _differential_check(system, ltl_property, **budget):
    base = dict(
        max_states=budget.get("max_states", 1500),
        max_repeated_states=budget.get("max_repeated_states", 1500),
        timeout_seconds=budget.get("timeout_seconds", 10),
    )
    fast = Verifier(
        system, VerifierOptions(repeated_violation_fast_path=True, **base)
    ).verify(ltl_property)
    classic = Verifier(
        system, VerifierOptions(repeated_violation_fast_path=False, **base)
    ).verify(ltl_property)
    if classic.unknown:
        # The classic re-search ran out of budget; the fast path may still
        # decide the instance as violated (a sound refinement), but it must
        # never claim satisfaction the classic path could not certify.
        assert not fast.satisfied, (
            f"fast path certifies satisfaction the classic search could not on "
            f"{system.name} × {ltl_property.name}"
        )
    else:
        assert fast.outcome == classic.outcome, (
            f"fast path diverges on {system.name} × {ltl_property.name}: "
            f"fast={fast.outcome.value} classic={classic.outcome.value}"
        )
    return fast, classic


class TestFastPathDifferential:
    """Fast-path verdicts must match the classic Section 3.8 re-search."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_instances_agree(self, seed):
        config = SyntheticConfig(
            relations=2, tasks=2, variables_per_task=4, services_per_task=4, seed=seed
        )
        system = generate_synthetic_workflow(config)
        # always / response / eventually / recurrence: the templates whose
        # verdicts most often hinge on the repeated-reachability phase.
        templates = [LTL_TEMPLATES[i] for i in (1, 6, 7, 9)]
        for ltl_property in generate_properties(system, seed=seed, templates=templates):
            _differential_check(system, ltl_property)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_randomized_instances_agree_full_sweep(self, seed):
        config = SyntheticConfig(
            relations=2, tasks=2, variables_per_task=5, services_per_task=5, seed=seed
        )
        system = generate_synthetic_workflow(config)
        for ltl_property in generate_properties(system, seed=seed):
            _differential_check(
                system, ltl_property, max_states=4000, max_repeated_states=4000
            )

    def test_handcrafted_systems_agree(self, tiny_system, relation_system):
        properties = [
            LTLFOProperty("Main", parse_ltl("G ns"),
                          {"ns": Neq(Var("status"), Const("shipped"))}, name="never-shipped"),
            LTLFOProperty("Main", parse_ltl("G F p"),
                          {"p": Eq(Var("status"), Const("picked"))}, name="recurrence"),
            LTLFOProperty("Main", parse_ltl("F p"),
                          {"p": Eq(Var("status"), Const("picked"))}, name="eventually"),
        ]
        for ltl_property in properties:
            _differential_check(tiny_system, ltl_property)

    def test_fast_path_can_be_disabled(self, tiny_system):
        """The gate exists and changes the execution path, not the verdict."""
        prop = LTLFOProperty(
            "Main", parse_ltl("G ns"),
            {"ns": Neq(Var("status"), Const("shipped"))}, name="never-shipped",
        )
        fast, classic = _differential_check(tiny_system, prop)
        assert fast.violated and classic.violated
        assert VerifierOptions().repeated_violation_fast_path is True
        assert VerifierOptions(
            repeated_violation_fast_path=False
        ).as_dict()["repeated_violation_fast_path"] is False

    def test_default_options_dict_omits_the_gate_for_fingerprint_stability(self):
        """Post-v1 option fields are emitted only when non-default, so
        content fingerprints (and every persisted result keyed by them) from
        before the field existed stay valid."""
        data = VerifierOptions().as_dict()
        assert "repeated_violation_fast_path" not in data
        assert VerifierOptions.from_dict(data).repeated_violation_fast_path is True
        assert "repeated_violation_fast_path" in VerifierOptions.known_keys()


class TestIterativeTarjan:
    def test_simple_cycle_and_tail(self):
        graph = {0: {1}, 1: {2}, 2: {0}, 3: {0}}  # 3 is a tail into the cycle
        assert _states_on_cycles(graph) == {0, 1, 2}

    def test_self_loop_counts(self):
        assert _states_on_cycles({0: {0}, 1: set()}) == {0}

    def test_acyclic_graph_has_no_cycle_states(self):
        graph = {0: {1, 2}, 1: {3}, 2: {3}, 3: set()}
        assert _states_on_cycles(graph) == set()

    def test_two_disjoint_sccs(self):
        graph = {0: {1}, 1: {0}, 2: {3}, 3: {2}, 4: {0, 2}}
        assert _states_on_cycles(graph) == {0, 1, 2, 3}

    def test_edge_target_missing_from_keys_is_a_sink(self):
        # Rooted graph construction can reference vertices it never expanded.
        assert _states_on_cycles({0: {1}}) == set()

    def test_deep_chain_does_not_recurse(self):
        """A path longer than CPython's recursion limit must not crash."""
        n = 50_000
        graph = {i: {i + 1} for i in range(n)}
        graph[n] = {n - 1}  # one cycle at the far end
        on_cycle = _states_on_cycles(graph)
        assert on_cycle == {n - 1, n}
