"""Unit tests for :mod:`repro.events`: typed events, the manager's sinks,
and the :class:`EventBroker` wakeup hub.

These run without a server: the bus is a plain library (dbt-style typed
event manager) and must stay usable from an embedding application, so
everything here exercises it directly against a bare :class:`JobStore` /
:class:`ServerMetrics`.
"""

from __future__ import annotations

import io
import threading
import time

import pytest

from repro.core.control import ProgressEvent
from repro.events import (
    DEBUG,
    ERROR,
    WARNING,
    CacheServed,
    Event,
    EventBroker,
    EventManager,
    JobCompleted,
    JobFailed,
    JobSubmitted,
    LogSink,
    MetricsSink,
    SearchEvent,
    StaleJobsRequeued,
    StoreSink,
    SweepCompleted,
    WorkerCrashed,
)
from repro.server.metrics import ServerMetrics
from repro.server.store import JobStore
from repro.service import VerificationJob


@pytest.fixture
def store(tmp_path):
    store = JobStore(tmp_path / "jobs.db")
    yield store
    store.close()


def _stored_job(store, tiny_system):
    from repro.has.conditions import Const, Eq, Var
    from repro.ltl import LTLFOProperty, parse_ltl

    prop = LTLFOProperty(
        "Main", parse_ltl("F p"),
        {"p": Eq(Var("status"), Const("picked"))}, name="eventually-picked",
    )
    return store.submit(VerificationJob.from_objects(tiny_system, prop))


# ------------------------------------------------------------------ the types


class TestEventTypes:
    def test_base_event_defaults(self):
        event = Event()
        assert event.job_id is None and event.data == {}
        assert event.log_kind() == "event"
        assert event.log_level() == "info"
        assert event.metric_increments() == []
        assert event.timestamp <= time.time()

    def test_counter_events_map_to_one_increment(self):
        assert JobSubmitted().metric_increments() == [("jobs_submitted", 1)]
        assert JobCompleted().metric_increments() == [("jobs_completed", 1)]
        assert JobFailed().log_level() == ERROR
        assert WorkerCrashed().log_level() == WARNING

    def test_search_event_kind_is_durable_log_kind(self):
        assert SearchEvent(kind="phase").log_kind() == "phase"
        assert SearchEvent(kind="progress").log_level() == DEBUG
        assert SearchEvent(kind="done").log_level() == "info"
        assert SearchEvent.durable and SearchEvent.lossy

    def test_cache_hit_lands_in_log_as_done(self):
        # Whether a verdict was searched or replayed, the log ends with "done".
        assert CacheServed().log_kind() == "done"
        assert CacheServed.durable and not CacheServed.lossy

    def test_sweep_events_carry_amounts(self):
        requeued = StaleJobsRequeued(data={"count": 3})
        assert requeued.metric_increments() == [("stale_jobs_requeued", 3)]
        swept = SweepCompleted(data={"jobs": 2, "events": 9, "results": 1})
        assert swept.metric_increments() == [
            ("jobs_expired", 2),
            ("results_expired", 1),
        ]


# ---------------------------------------------------------------- the manager


class TestEventManager:
    def test_fire_reaches_every_sink(self):
        seen_a, seen_b = [], []
        manager = EventManager()
        manager.add_sink(seen_a.append)
        manager.add_sink(seen_b.append)
        event = JobCompleted(job_id="j1")
        manager.fire(event)
        assert seen_a == [event] and seen_b == [event]

    def test_failing_sink_never_blocks_the_rest(self):
        seen = []
        manager = EventManager()

        def explode(event):
            raise RuntimeError("broken observer")

        manager.add_sink(explode)
        manager.add_sink(seen.append)
        manager.fire(JobCompleted())
        assert len(seen) == 1

    def test_remove_sink(self):
        seen = []
        manager = EventManager()
        sink = manager.add_sink(seen.append)
        manager.remove_sink(sink)
        manager.fire(JobCompleted())
        assert seen == []

    def test_progress_sink_bridges_search_events(self):
        seen = []
        manager = EventManager()
        manager.add_sink(seen.append)
        forward = manager.progress_sink("job-7")
        forward(ProgressEvent(kind="phase", data={"phase": "search"}, seq=1))
        forward(ProgressEvent(kind="progress", data={"states_explored": 50}, seq=2))
        assert [type(e) for e in seen] == [SearchEvent, SearchEvent]
        assert seen[0].job_id == "job-7" and seen[0].kind == "phase"
        assert seen[1].data == {"states_explored": 50}


class TestMetricsSink:
    def test_counters_and_events_emitted(self):
        metrics = ServerMetrics()
        sink = MetricsSink(metrics)
        sink.handle(JobSubmitted())
        sink.handle(JobCompleted(data={"seconds": 0.25}))
        sink.handle(StaleJobsRequeued(data={"count": 4}))
        sink.handle(SweepCompleted(data={"jobs": 2, "results": 1}))
        sink.handle(Event())  # no counter: only events_emitted moves
        assert metrics.counter("events_emitted") == 5
        assert metrics.counter("jobs_submitted") == 1
        assert metrics.counter("jobs_completed") == 1
        assert metrics.counter("stale_jobs_requeued") == 4
        assert metrics.counter("jobs_expired") == 2
        assert metrics.counter("results_expired") == 1

    def test_job_completed_feeds_latency_tracker(self):
        metrics = ServerMetrics()
        MetricsSink(metrics).handle(JobCompleted(data={"seconds": 0.5}))
        assert metrics.job_latency.snapshot()["count"] == 1


class TestStoreSink:
    def test_durable_events_land_in_the_job_log(self, store, tiny_system):
        stored = _stored_job(store, tiny_system)
        sink = StoreSink(store)
        sink.handle(SearchEvent(job_id=stored.id, data={"phase": "search"}, kind="phase"))
        sink.handle(CacheServed(job_id=stored.id, data={"outcome": "satisfied"}))
        events = store.events_after(stored.id)
        assert [e["kind"] for e in events] == ["phase", "done"]
        assert events[0]["data"] == {"phase": "search"}
        assert [e["seq"] for e in events] == [1, 2]

    def test_non_durable_and_unscoped_events_are_skipped(self, store, tiny_system):
        stored = _stored_job(store, tiny_system)
        sink = StoreSink(store)
        sink.handle(JobCompleted(job_id=stored.id))  # metrics-only event
        sink.handle(SearchEvent(job_id=None, kind="phase"))  # no job: nowhere to log
        assert store.events_after(stored.id) == []


class TestLogSink:
    def test_renders_one_line_per_event(self):
        stream = io.StringIO()
        sink = LogSink(stream)
        sink.handle(WorkerCrashed(job_id="j9", data={"exitcode": -9}))
        line = stream.getvalue()
        assert line.endswith("\n") and line.count("\n") == 1
        assert "warning" in line and "worker-crash" in line
        assert "job=j9" in line and '"exitcode": -9' in line

    def test_min_level_filters_debug_chatter(self):
        stream = io.StringIO()
        sink = LogSink(stream)  # default threshold: info
        sink.handle(SearchEvent(job_id="j1", kind="progress"))
        assert stream.getvalue() == ""
        sink.handle(SearchEvent(job_id="j1", kind="done"))
        assert "search job=j1" in stream.getvalue()

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            LogSink(io.StringIO(), min_level="loud")


# ----------------------------------------------------------------- the broker


class TestEventBroker:
    def test_notify_without_waiters_is_a_noop(self):
        broker = EventBroker()
        broker.notify("nobody-listens")
        assert broker.waiter_count() == 0

    def test_notification_racing_ahead_of_wait_is_not_missed(self):
        # The generation counter means: a notify that lands after subscribing
        # but before wait() makes the wait return immediately.
        broker = EventBroker()
        with broker.subscription("j1") as subscription:
            broker.notify("j1")
            started = time.monotonic()
            assert subscription.wait(timeout=5.0) is True
            assert time.monotonic() - started < 1.0

    def test_wait_times_out_quietly(self):
        broker = EventBroker()
        with broker.subscription("j1") as subscription:
            assert subscription.wait(timeout=0.05) is False

    def test_cross_thread_wakeup(self):
        broker = EventBroker()
        woke = threading.Event()

        def wait_for_news():
            with broker.subscription("j1") as subscription:
                if subscription.wait(timeout=5.0):
                    woke.set()

        thread = threading.Thread(target=wait_for_news)
        thread.start()
        deadline = time.monotonic() + 5.0
        while broker.waiter_count() == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        broker.notify("j1")
        thread.join(timeout=5.0)
        assert woke.is_set()

    def test_entries_are_reclaimed_at_zero_waiters(self):
        broker = EventBroker()
        with broker.subscription("j1"):
            with broker.subscription("j1"):
                assert broker.waiter_count() == 2
        assert broker.waiter_count() == 0
        assert broker._entries == {}

    def test_notify_only_wakes_the_jobs_subscribers(self):
        broker = EventBroker()
        with broker.subscription("j1") as subscription:
            broker.notify("j2")
            assert subscription.wait(timeout=0.05) is False


# ---------------------------------------- the store's post-commit update hook


class TestStoreUpdateHook:
    def test_append_and_terminal_marks_fire_the_hook(self, store, tiny_system):
        stored = _stored_job(store, tiny_system)
        touched = []
        store.on_job_update = touched.append
        store.append_event(stored.id, "phase", {"data": {"phase": "search"}})
        claimed = store.claim_next()
        assert claimed is not None and claimed.id == stored.id
        store.mark_done(stored.id, {"outcome": "satisfied"})
        assert touched.count(stored.id) >= 2  # the append + the terminal mark

    def test_cancel_request_fires_the_hook_once(self, store, tiny_system):
        stored = _stored_job(store, tiny_system)
        touched = []
        store.on_job_update = touched.append
        store.request_cancel(stored.id)
        assert touched == [stored.id]
        touched.clear()
        store.request_cancel(stored.id)  # already terminal: no new commit
        assert touched == []

    def test_hook_exceptions_never_break_the_write(self, store, tiny_system):
        stored = _stored_job(store, tiny_system)

        def explode(job_id):
            raise RuntimeError("listener died")

        store.on_job_update = explode
        seq = store.append_event(stored.id, "phase", {"data": {}})
        assert seq == 1
        assert store.events_after(stored.id)[0]["kind"] == "phase"
